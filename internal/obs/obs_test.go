package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	// Exact boundary: 1024ns must land in the le=1024ns bucket.
	h.Observe(1024 * time.Nanosecond)
	if got := h.buckets[0].Load(); got != 1 {
		t.Errorf("1024ns in bucket 0: got %d", got)
	}
	h.Observe(1025 * time.Nanosecond)
	if got := h.buckets[1].Load(); got != 1 {
		t.Errorf("1025ns in bucket 1: got %d", got)
	}
	h.Observe(0)
	h.Observe(-time.Second) // clamps to zero
	if got := h.buckets[0].Load(); got != 3 {
		t.Errorf("zero/negative observations in bucket 0: got %d", got)
	}
	h.Observe(time.Hour) // far past the last finite bound
	if got := h.buckets[histBuckets].Load(); got != 1 {
		t.Errorf("1h in +Inf bucket: got %d", got)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	wantSum := 1024 + 1025 + int64(time.Hour)
	if got := h.Sum(); int64(got) != wantSum {
		t.Errorf("Sum = %d, want %d", got, wantSum)
	}
}

func TestNilReceiversAreInert(t *testing.T) {
	var o *Obs
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	c.Inc()
	c.Add(5)
	c.Set(9)
	g.Set(1)
	g.Add(-1)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil metrics accumulated values")
	}
	trace := o.Start("op", "detail")
	if trace != nil {
		t.Fatal("nil Obs returned a live trace")
	}
	// The whole trace API must be a no-op on the nil trace.
	trace.Span(StageEval, time.Time{})
	trace.SpanNote(StageFetch, time.Time{}, "x")
	trace.SetErr(fmt.Errorf("boom"))
	trace.Annotate("q")
	trace.Finish()
	if got := tr.Recent(); got != nil {
		t.Errorf("nil tracer Recent = %v", got)
	}
}

func TestTracerRingAndSlow(t *testing.T) {
	var logged []string
	o := New(Config{
		RingSize:      4,
		SlowRingSize:  2,
		SlowThreshold: time.Nanosecond, // everything is slow
		Logf: func(format string, args ...any) {
			logged = append(logged, fmt.Sprintf(format, args...))
		},
	})
	for i := 0; i < 6; i++ {
		tr := o.Start("query", fmt.Sprintf("q%d", i))
		if tr == nil {
			t.Fatal("default sampling dropped a trace")
		}
		tr.Span(StageEval, time.Now())
		tr.Finish()
		tr.Finish() // idempotent
	}
	recent := o.Tracer.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent ring holds %d traces, want 4 (capacity)", len(recent))
	}
	// Newest first: q5 then q4.
	if recent[0].Detail != "q5" || recent[1].Detail != "q4" {
		t.Errorf("ring order wrong: %q, %q", recent[0].Detail, recent[1].Detail)
	}
	if len(recent[0].Spans) != 1 || recent[0].Spans[0].Stage != StageEval {
		t.Errorf("spans not retained: %+v", recent[0].Spans)
	}
	slow := o.Tracer.Slow()
	if len(slow) != 2 {
		t.Fatalf("slow ring holds %d, want 2", len(slow))
	}
	if len(logged) != 6 {
		t.Errorf("slow log called %d times, want 6", len(logged))
	}
	if got := o.M.TraceSampled.Value(); got != 6 {
		t.Errorf("TraceSampled = %d, want 6", got)
	}
	if got := o.M.TraceSlow.Value(); got != 6 {
		t.Errorf("TraceSlow = %d, want 6", got)
	}
	// Stage histogram fed from spans at Finish.
	if got := o.M.stage(StageEval).Count(); got != 6 {
		t.Errorf("stage histogram count = %d, want 6", got)
	}
}

func TestTracerSampling(t *testing.T) {
	o := New(Config{SampleEvery: 3})
	var live int
	for i := 0; i < 9; i++ {
		if tr := o.Start("query", ""); tr != nil {
			live++
			tr.Finish()
		}
	}
	if live != 3 {
		t.Errorf("1-in-3 sampling kept %d of 9", live)
	}
}

func TestTraceErrAndAnnotate(t *testing.T) {
	o := New(Config{})
	tr := o.Start("refresh", "GO")
	tr.Annotate("delta")
	tr.SetErr(fmt.Errorf("wrapper down"))
	tr.Finish()
	v := o.Tracer.Recent()[0]
	if v.Detail != "GO | delta" {
		t.Errorf("detail = %q", v.Detail)
	}
	if v.Err != "wrapper down" {
		t.Errorf("err = %q", v.Err)
	}
	if v.ID == "" {
		t.Error("trace has no ID")
	}
}

func TestRequestIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request ID %s", id)
		}
		seen[id] = true
		if !strings.Contains(id, "-") {
			t.Fatalf("request ID %q missing prefix separator", id)
		}
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	o := New(Config{})
	o.M.OpDur.With("query").Observe(3 * time.Millisecond)
	o.M.OpDur.With("query").Observe(50 * time.Microsecond)
	o.M.OpDur.With("refresh").Observe(time.Second)
	o.M.OpErr.With("query").Inc()
	o.M.HTTPInFlight.Set(2)
	o.M.CkptBytes.Add(12345)
	gathered := false
	o.Reg.OnGather(func() {
		gathered = true
		o.M.WALBytes.Set(777)
	})

	var buf bytes.Buffer
	if err := o.Reg.Expose(&buf); err != nil {
		t.Fatal(err)
	}
	if !gathered {
		t.Error("OnGather collector not invoked")
	}
	exp, err := ValidateExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own exposition invalid: %v\n%s", err, buf.String())
	}
	if got := exp.SumCount("annoda_op_duration_seconds_count"); got != 3 {
		t.Errorf("op count = %v, want 3", got)
	}
	if v, ok := exp.Value("annoda_op_duration_seconds_count", map[string]string{"op": "query"}); !ok || v != 2 {
		t.Errorf("query op count = %v (found=%v), want 2", v, ok)
	}
	if v, ok := exp.Value("annoda_wal_append_bytes_total", nil); !ok || v != 777 {
		t.Errorf("collector-set counter = %v (found=%v), want 777", v, ok)
	}
	if exp.Types["annoda_op_duration_seconds"] != "histogram" {
		t.Errorf("TYPE lost: %q", exp.Types["annoda_op_duration_seconds"])
	}
	// Label escaping survives a round trip.
	o.M.HTTPDur.With(`we"ird\ro` + "\n" + `ute`).Observe(time.Millisecond)
	buf.Reset()
	if err := o.Reg.Expose(&buf); err != nil {
		t.Fatal(err)
	}
	exp2, err := ValidateExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("escaped exposition invalid: %v", err)
	}
	if _, ok := exp2.Value("annoda_http_request_duration_seconds_count",
		map[string]string{"route": `we"ird\ro` + "\n" + `ute`}); !ok {
		t.Error("escaped label did not round-trip")
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"no trailing newline", "a 1"},
		{"bad name", "9bad 1\n"},
		{"missing value", "a{x=\"1\"}\n"},
		{"bad value", "a nope\n"},
		{"unterminated label", "a{x=\"1 1\n"},
		{"duplicate TYPE", "# TYPE a counter\n# TYPE a gauge\na 1\n"},
		{"TYPE after samples", "a 1\n# TYPE a counter\n"},
		{"unknown TYPE", "# TYPE a widget\na 1\n"},
		{"negative counter", "# TYPE a counter\na -1\n"},
		{"interleaved families", "# TYPE a counter\n# TYPE b counter\na 1\nb 1\na 2\n"},
		{"histogram no inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram inf != count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 1\n"},
		{"histogram non-cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
		{"bad escape", "a{x=\"\\q\"} 1\n"},
	}
	for _, tc := range cases {
		if _, err := ValidateExposition(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted malformed exposition", tc.name)
		}
	}
	// And a well-formed one with timestamps and comments is accepted.
	good := "# scraped from somewhere\n# TYPE a counter\n# HELP a does things\na{x=\"1\"} 5 1700000000000\n\n# TYPE g gauge\ng -3.5e-2\n"
	if _, err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Errorf("rejected well-formed exposition: %v", err)
	}
}

// TestTraceConcurrentSpans exercises the span mutex and lock-free rings
// under the race detector: workers append spans to a shared trace while
// other finished traces stream through the ring and readers snapshot it.
func TestTraceConcurrentSpans(t *testing.T) {
	o := New(Config{RingSize: 8})
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	// Ring readers.
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, v := range o.Tracer.Recent() {
					_ = v.Spans
				}
				var buf bytes.Buffer
				if err := o.Reg.Expose(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Writers: each builds traces with concurrent span appends.
	for i := 0; i < 4; i++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for n := 0; n < 200; n++ {
				tr := o.Start("batch", "load")
				var inner sync.WaitGroup
				for w := 0; w < 3; w++ {
					inner.Add(1)
					go func() {
						defer inner.Done()
						tr.Span(StageEval, time.Now())
					}()
				}
				inner.Wait()
				tr.Finish()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := o.M.TraceSampled.Value(); got != 800 {
		t.Errorf("sampled = %d, want 800", got)
	}
}
