// Package obs is ANNODA's dependency-free observability layer: per-request
// traces, atomic metrics with a hand-rolled Prometheus text exposition, and
// the one sanctioned home for wall-clock reads (Now/Since — enforced by the
// nowalltime analyzer).
//
// Design constraints, in order:
//
//  1. The nil fast path is free. Every method on *Obs, *Trace, *Counter,
//     *Gauge and *Histogram is nil-receiver-safe, so instrumented code is
//     written unconditionally (`tr.Span(...)`, `h.Observe(...)`) and costs
//     one predictable branch when observability is off.
//  2. The hot path stays honest. A histogram observation is two atomic
//     adds; a trace is one allocation plus lock-free ring publication at
//     Finish. E19 (EXPERIMENTS.md) pins the overhead of tracing every
//     request under the 5% acceptance budget.
//  3. No dependencies. The Prometheus exposition (text format 0.0.4) is
//     written and validated by hand; see expfmt.go.
//
// A *Obs bundles the three pieces most callers want together: a metric
// Registry, the pre-registered ANNODA metric families (Metrics), and a
// Tracer whose finished traces feed the per-stage histograms.
package obs

import "time"

// Config tunes a new Obs. The zero value is a sensible default: trace
// every request, keep 256 recent and 64 slow traces, and call anything
// slower than 250ms slow.
type Config struct {
	// SampleEvery traces one request in N. 0 or 1 traces everything —
	// the default, because debugging wants the request you just made,
	// not one in sixteen. Raise it on hot fleets where the per-request
	// allocation shows up.
	SampleEvery int
	// RingSize is the capacity of the recent-trace ring (default 256).
	RingSize int
	// SlowRingSize is the capacity of the slow-trace ring (default 64).
	SlowRingSize int
	// SlowThreshold promotes a finished trace into the slow ring and the
	// slow-query log (default 250ms).
	SlowThreshold time.Duration
	// Logf, when set, receives one line per slow trace (the slow-query
	// log). nil disables logging; the slow ring still fills.
	Logf func(format string, args ...any)
}

const (
	defaultRingSize      = 256
	defaultSlowRingSize  = 64
	defaultSlowThreshold = 250 * time.Millisecond
)

// Obs bundles a metric registry, the ANNODA metric families, and a tracer.
// A nil *Obs is valid and disables everything.
type Obs struct {
	Reg    *Registry
	M      *Metrics
	Tracer *Tracer
}

// New builds an Obs with its own Registry, the standard ANNODA metric
// families pre-registered, and a Tracer wired to feed stage histograms.
func New(cfg Config) *Obs {
	reg := NewRegistry()
	m := newMetrics(reg)
	return &Obs{Reg: reg, M: m, Tracer: newTracer(cfg, m)}
}

// Start begins a trace (subject to sampling). Returns nil — a valid,
// inert trace — when o is nil or the request is sampled out.
func (o *Obs) Start(op, detail string) *Trace {
	if o == nil {
		return nil
	}
	return o.Tracer.Start(op, detail)
}

// StartID is Start with a caller-chosen trace ID (the server passes the
// request ID so /api/debug/traces correlates with X-Request-ID).
func (o *Obs) StartID(id, op, detail string) *Trace {
	if o == nil {
		return nil
	}
	return o.Tracer.StartID(id, op, detail)
}

// Stage names recorded by the wired call sites. Constants rather than ad
// hoc strings so the pre-resolved stage histograms in Metrics stay in sync
// with what the mediator and server actually record.
const (
	StageCacheLookup      = "cache_lookup"
	StageSingleflightWait = "singleflight_wait"
	StageEpochPin         = "epoch_pin"
	StagePlanCompile      = "plan_compile"
	StagePushdown         = "pushdown"
	StageFetch            = "fetch"
	StageFuse             = "fuse"
	StageEval             = "eval"
	StageDiff             = "diff"
	StageDeltaPatch       = "delta_patch"
	StageWALAppend        = "wal_append"
	StageCheckpoint       = "checkpoint"
	StageRestore          = "restore"
	StageInvalidate       = "invalidate"
	StageStandingEval     = "standing_eval"
	StageFeedPublish      = "feed_publish"
	StageRetry            = "fetch_retry"
	StageProbe            = "health_probe"
)

// knownStages lists every constant above, in recording order, for the
// pre-resolved stage histogram table.
var knownStages = []string{
	StageCacheLookup, StageSingleflightWait, StageEpochPin,
	StagePlanCompile, StagePushdown, StageFetch, StageFuse, StageEval,
	StageDiff, StageDeltaPatch, StageWALAppend, StageCheckpoint,
	StageRestore, StageInvalidate, StageStandingEval, StageFeedPublish,
	StageRetry, StageProbe,
}
