package obs

import (
	"bytes"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Latency histograms use log2 buckets over nanoseconds: finite upper
// bounds 2^histMinExp .. 2^histMaxExp ns (≈1µs .. ≈17s), one overflow
// (+Inf) bucket above. An observation is two atomic adds and a
// bits.Len64 — no floats, no lock, no search.
const (
	histMinExp  = 10                          // 2^10 ns ≈ 1.02 µs
	histMaxExp  = 34                          // 2^34 ns ≈ 17.2 s
	histBuckets = histMaxExp - histMinExp + 1 // finite buckets (25)
)

// Counter is a monotone uint64. Collectors that mirror externally owned
// counters (qcache, feed, delta) overwrite it with Set at scrape time.
// A nil *Counter ignores everything.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Set overwrites the value (collector use only — counters exposed to
// Prometheus must never regress between scrapes).
func (c *Counter) Set(n uint64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64. A nil *Gauge ignores everything.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed log2-bucket latency histogram. A nil *Histogram
// ignores observations.
type Histogram struct {
	buckets [histBuckets + 1]atomic.Uint64 // last slot is +Inf
	sum     atomic.Uint64                  // nanoseconds
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.sum.Add(uint64(ns))
	idx := 0
	if ns > 1 {
		// Smallest e with ns <= 2^e, so the le="2^e" bucket contract
		// holds exactly at bucket boundaries.
		if e := bits.Len64(uint64(ns) - 1); e > histMinExp {
			idx = e - histMinExp
			if idx > histBuckets {
				idx = histBuckets
			}
		}
	}
	h.buckets[idx].Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// metricKind discriminates family types in the registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled instance within a family.
type series struct {
	vals []string // label values, parallel to family.labels
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// family is one exposition family: a name, HELP text, a kind, a label
// schema, and the labelled series created so far.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string

	mu     sync.RWMutex
	series map[string]*series
}

// with returns (creating on first use) the series for the given label
// values. The read path is an RLock + map hit.
func (f *family) with(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\x00")
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{vals: append([]string(nil), vals...)}
	switch f.kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = &Histogram{}
	}
	f.series[key] = s
	return s
}

// Registry holds metric families and renders them as Prometheus text
// exposition format 0.0.4. Registration is idempotent: asking for an
// existing name returns the existing family (and panics on a kind or
// label-schema mismatch, which is a programming error).
type Registry struct {
	mu     sync.Mutex
	fams   map[string]*family
	gather []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) getFamily(name, help string, kind metricKind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered as a different kind or label schema", name))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		series: make(map[string]*series),
	}
	r.fams[name] = f
	return f
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.getFamily(name, help, kindCounter, nil).with(nil).c
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.getFamily(name, help, kindGauge, nil).with(nil).g
}

// Histogram registers (or fetches) an unlabelled histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.getFamily(name, help, kindHistogram, nil).with(nil).h
}

// CounterVec is a counter family with labels.
type CounterVec struct{ fam *family }

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.getFamily(name, help, kindCounter, labels)}
}

// With returns the counter for the given label values.
func (v *CounterVec) With(vals ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.with(vals).c
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ fam *family }

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.getFamily(name, help, kindGauge, labels)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(vals ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.with(vals).g
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ fam *family }

// HistogramVec registers (or fetches) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	return &HistogramVec{r.getFamily(name, help, kindHistogram, labels)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.with(vals).h
}

// OnGather registers a collector callback run at the start of every
// Expose. Collectors sync externally owned counters (qcache, feed, delta,
// persist) into registry metrics at scrape time, so the owning hot paths
// pay nothing.
func (r *Registry) OnGather(f func()) {
	r.mu.Lock()
	r.gather = append(r.gather, f)
	r.mu.Unlock()
}

// Expose writes the registry in Prometheus text exposition format 0.0.4:
// families sorted by name, series sorted by label values, histograms as
// cumulative _bucket/_sum/_count with le in seconds.
func (r *Registry) Expose(w io.Writer) error {
	r.mu.Lock()
	gather := append([]func(){}, r.gather...)
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()

	for _, g := range gather {
		g()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var buf bytes.Buffer
	for _, f := range fams {
		f.mu.RLock()
		ser := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ser = append(ser, s)
		}
		f.mu.RUnlock()
		if len(ser) == 0 {
			continue
		}
		sort.Slice(ser, func(i, j int) bool {
			return strings.Join(ser[i].vals, "\x00") < strings.Join(ser[j].vals, "\x00")
		})
		fmt.Fprintf(&buf, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&buf, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ser {
			writeSeries(&buf, f, s)
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func writeSeries(buf *bytes.Buffer, f *family, s *series) {
	switch f.kind {
	case kindCounter:
		writeSample(buf, f.name, f.labels, s.vals, "", "", strconv.FormatUint(s.c.Value(), 10))
	case kindGauge:
		writeSample(buf, f.name, f.labels, s.vals, "", "", strconv.FormatInt(s.g.Value(), 10))
	case kindHistogram:
		var cum uint64
		for i := 0; i < histBuckets; i++ {
			cum += s.h.buckets[i].Load()
			le := strconv.FormatFloat(float64(uint64(1)<<(histMinExp+i))/1e9, 'g', -1, 64)
			writeSample(buf, f.name+"_bucket", f.labels, s.vals, "le", le, strconv.FormatUint(cum, 10))
		}
		cum += s.h.buckets[histBuckets].Load()
		writeSample(buf, f.name+"_bucket", f.labels, s.vals, "le", "+Inf", strconv.FormatUint(cum, 10))
		sum := strconv.FormatFloat(float64(s.h.sum.Load())/1e9, 'g', -1, 64)
		writeSample(buf, f.name+"_sum", f.labels, s.vals, "", "", sum)
		writeSample(buf, f.name+"_count", f.labels, s.vals, "", "", strconv.FormatUint(cum, 10))
	}
}

// writeSample emits one `name{labels} value` line; extraKey/extraVal
// append the histogram le label.
func writeSample(buf *bytes.Buffer, name string, keys, vals []string, extraKey, extraVal, value string) {
	buf.WriteString(name)
	if len(keys) > 0 || extraKey != "" {
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			buf.WriteString(k)
			buf.WriteString(`="`)
			buf.WriteString(escapeLabel(vals[i]))
			buf.WriteByte('"')
		}
		if extraKey != "" {
			if len(keys) > 0 {
				buf.WriteByte(',')
			}
			buf.WriteString(extraKey)
			buf.WriteString(`="`)
			buf.WriteString(extraVal)
			buf.WriteByte('"')
		}
		buf.WriteByte('}')
	}
	buf.WriteByte(' ')
	buf.WriteString(value)
	buf.WriteByte('\n')
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Handler serves the exposition over HTTP (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var buf bytes.Buffer
		r.Expose(&buf) //nolint:errcheck // bytes.Buffer cannot fail
		w.Write(buf.Bytes())
	})
}

// Metrics is the pre-registered ANNODA metric family set. Handles are
// resolved once at construction so hot paths observe without any map
// lookup. A nil *Metrics (and nil fields) disables everything.
type Metrics struct {
	// Mediator operations, observed unconditionally (not subject to
	// trace sampling) so histogram counts equal observed requests.
	OpDur *HistogramVec // annoda_op_duration_seconds{op}
	OpErr *CounterVec   // annoda_op_errors_total{op}

	// Per-stage latencies, fed from sampled trace spans at Finish.
	StageDur *HistogramVec // annoda_stage_duration_seconds{stage}

	// HTTP server.
	HTTPDur      *HistogramVec // annoda_http_request_duration_seconds{route}
	HTTPResp     *CounterVec   // annoda_http_responses_total{route,class}
	HTTPInFlight *Gauge        // annoda_http_in_flight

	// Durability (observed in the mediator persist path, so snapstore
	// itself stays clock-free and byte-deterministic).
	CkptDur   *Histogram // annoda_checkpoint_duration_seconds
	CkptBytes *Counter   // annoda_checkpoint_bytes_total
	WALDur    *Histogram // annoda_wal_append_duration_seconds
	WALBytes  *Counter   // annoda_wal_append_bytes_total

	// Change-feed publication (fan-out latency under the epoch lock).
	FeedPubDur *Histogram // annoda_feed_publish_duration_seconds

	// Tracer self-accounting.
	TraceSampled *Counter // annoda_traces_sampled_total
	TraceSlow    *Counter // annoda_traces_slow_total

	stageH map[string]*Histogram // pre-resolved knownStages handles
}

func newMetrics(reg *Registry) *Metrics {
	m := &Metrics{
		OpDur: reg.HistogramVec("annoda_op_duration_seconds",
			"Latency of mediator operations (every call, independent of trace sampling).", "op"),
		OpErr: reg.CounterVec("annoda_op_errors_total",
			"Mediator operations that returned an error.", "op"),
		StageDur: reg.HistogramVec("annoda_stage_duration_seconds",
			"Latency of named stages inside traced operations (sampled traces only).", "stage"),
		HTTPDur: reg.HistogramVec("annoda_http_request_duration_seconds",
			"HTTP request latency by route.", "route"),
		HTTPResp: reg.CounterVec("annoda_http_responses_total",
			"HTTP responses by route and status class.", "route", "class"),
		HTTPInFlight: reg.Gauge("annoda_http_in_flight",
			"HTTP requests currently being served."),
		CkptDur: reg.Histogram("annoda_checkpoint_duration_seconds",
			"Time to encode and write one snapshot checkpoint."),
		CkptBytes: reg.Counter("annoda_checkpoint_bytes_total",
			"Bytes written to snapshot checkpoints."),
		WALDur: reg.Histogram("annoda_wal_append_duration_seconds",
			"Time to encode and append one delta WAL record."),
		WALBytes: reg.Counter("annoda_wal_append_bytes_total",
			"Bytes appended to the delta WAL."),
		FeedPubDur: reg.Histogram("annoda_feed_publish_duration_seconds",
			"Time to fan one change event out to feed subscribers."),
		TraceSampled: reg.Counter("annoda_traces_sampled_total",
			"Traces recorded (after sampling)."),
		TraceSlow: reg.Counter("annoda_traces_slow_total",
			"Traces that exceeded the slow threshold."),
	}
	m.stageH = make(map[string]*Histogram, len(knownStages))
	for _, st := range knownStages {
		m.stageH[st] = m.StageDur.With(st)
	}
	return m
}

// stage returns the histogram for a span stage, falling back to the vec
// for stages outside the known set.
func (m *Metrics) stage(name string) *Histogram {
	if m == nil {
		return nil
	}
	if h, ok := m.stageH[name]; ok {
		return h
	}
	return m.StageDur.With(name)
}
