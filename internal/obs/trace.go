package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one named stage inside a trace: where the time went.
type Span struct {
	Stage    string
	Offset   time.Duration // from trace start
	Duration time.Duration
	Note     string
}

// Trace records one operation: an ID, an op name, free-form detail, and
// the spans its stages recorded along the way. All methods are safe on a
// nil receiver — that is the fast path when tracing is off or the request
// was sampled out. Span appends take a small mutex because parallel fetch
// and AskBatch workers record into the same trace concurrently.
//
// After Finish a trace is immutable and published to the tracer's rings,
// where /api/debug/traces readers walk it lock-free.
type Trace struct {
	tracer *Tracer
	id     string
	op     string
	start  time.Time

	mu     sync.Mutex
	detail string
	spans  []Span
	sbuf   [4]Span // inline backing array: the common ask records ≤4 spans
	end    time.Time
	err    string
	done   bool
}

// ID returns the trace/request ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Span records a stage that started at start and ends now.
func (t *Trace) Span(stage string, start time.Time) {
	if t == nil {
		return
	}
	t.span(stage, start, time.Since(start), "")
}

// SpanNote is Span with an attached note (a query string, a source name,
// a hit/miss disposition).
func (t *Trace) SpanNote(stage string, start time.Time, note string) {
	if t == nil {
		return
	}
	t.span(stage, start, time.Since(start), note)
}

// SpanDur records a stage whose duration the caller already measured.
func (t *Trace) SpanDur(stage string, start time.Time, d time.Duration, note string) {
	if t == nil {
		return
	}
	t.span(stage, start, d, note)
}

func (t *Trace) span(stage string, start time.Time, d time.Duration, note string) {
	off := start.Sub(t.start)
	t.mu.Lock()
	if !t.done {
		if t.spans == nil {
			t.spans = t.sbuf[:0]
		}
		t.spans = append(t.spans, Span{Stage: stage, Offset: off, Duration: d, Note: note})
	}
	t.mu.Unlock()
}

// Annotate appends detail text (the mediator adds the canonical query so
// a trace names what it computed, not just which route it came in on).
func (t *Trace) Annotate(s string) {
	if t == nil || s == "" {
		return
	}
	t.mu.Lock()
	if !t.done {
		if t.detail == "" {
			t.detail = s
		} else {
			t.detail += " | " + s
		}
	}
	t.mu.Unlock()
}

// SetErr records the operation's error (nil clears nothing and is safe).
func (t *Trace) SetErr(err error) {
	if t == nil || err == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.err = err.Error()
	}
	t.mu.Unlock()
}

// Finish seals the trace and publishes it to the recent ring (and the
// slow ring + slow-query log when over threshold). Idempotent; safe on
// nil.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	end := time.Now()
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.end = end
	spans := t.spans
	t.mu.Unlock()
	tr := t.tracer
	if tr == nil {
		return
	}
	if m := tr.m; m != nil {
		for i := range spans {
			m.stage(spans[i].Stage).Observe(spans[i].Duration)
		}
		m.TraceSampled.Inc()
	}
	tr.recent.push(t)
	if d := end.Sub(t.start); d >= tr.slowThresh {
		tr.slow.push(t)
		if tr.m != nil {
			tr.m.TraceSlow.Inc()
		}
		if tr.logf != nil {
			tr.logf("slow op: id=%s op=%s dur=%s detail=%q err=%q stages=%s",
				t.id, t.op, d, t.detail, t.err, topStages(spans))
		}
	}
}

// topStages renders the slowest spans of a finished trace for the
// slow-query log — "[eval=12ms fetch=3ms fuse=1ms]" — so the log line
// itself says where the time went without a trip to /api/debug/traces.
// At most three stages are listed, slowest first.
func topStages(spans []Span) string {
	if len(spans) == 0 {
		return "[]"
	}
	top := append([]Span(nil), spans...)
	sort.Slice(top, func(i, j int) bool { return top[i].Duration > top[j].Duration })
	if len(top) > 3 {
		top = top[:3]
	}
	var sb strings.Builder
	sb.WriteByte('[')
	for i, s := range top {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(s.Stage)
		sb.WriteByte('=')
		sb.WriteString(s.Duration.Round(time.Microsecond).String())
	}
	sb.WriteByte(']')
	return sb.String()
}

// ring is a lock-free fixed-capacity ring of finished traces: writers
// claim a slot with one atomic add, readers load slot pointers. A slot's
// trace is always fully built before the pointer lands (Finish publishes
// after sealing), so snapshots never observe a half-written trace.
type ring struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

func newRing(n int) ring {
	return ring{slots: make([]atomic.Pointer[Trace], n)}
}

func (r *ring) push(t *Trace) {
	if len(r.slots) == 0 {
		return
	}
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

// snapshot returns the ring's traces, newest first.
func (r *ring) snapshot() []*Trace {
	n := len(r.slots)
	if n == 0 {
		return nil
	}
	head := r.next.Load()
	out := make([]*Trace, 0, n)
	for k := 0; k < n; k++ {
		// Walk backwards from the most recently claimed slot.
		idx := (head + uint64(n) - 1 - uint64(k)) % uint64(n)
		if t := r.slots[idx].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Tracer samples, records, and retains traces. A nil *Tracer disables
// tracing.
type Tracer struct {
	sampleEvery uint64
	slowThresh  time.Duration
	logf        func(format string, args ...any)
	m           *Metrics

	sampleCtr atomic.Uint64
	recent    ring
	slow      ring
}

func newTracer(cfg Config, m *Metrics) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = defaultRingSize
	}
	if cfg.SlowRingSize <= 0 {
		cfg.SlowRingSize = defaultSlowRingSize
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = defaultSlowThreshold
	}
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	return &Tracer{
		sampleEvery: uint64(cfg.SampleEvery),
		slowThresh:  cfg.SlowThreshold,
		logf:        cfg.Logf,
		m:           m,
		recent:      newRing(cfg.RingSize),
		slow:        newRing(cfg.SlowRingSize),
	}
}

// Start begins a trace with a fresh request ID, subject to sampling.
// Returns nil (a valid, inert trace) when sampled out or tr is nil.
func (tr *Tracer) Start(op, detail string) *Trace {
	if tr == nil {
		return nil
	}
	if tr.sampleEvery > 1 && tr.sampleCtr.Add(1)%tr.sampleEvery != 0 {
		return nil
	}
	return tr.newTrace(NewRequestID(), op, detail)
}

// StartID is Start with a caller-chosen ID (the server's request ID).
// Sampling still applies.
func (tr *Tracer) StartID(id, op, detail string) *Trace {
	if tr == nil {
		return nil
	}
	if tr.sampleEvery > 1 && tr.sampleCtr.Add(1)%tr.sampleEvery != 0 {
		return nil
	}
	return tr.newTrace(id, op, detail)
}

func (tr *Tracer) newTrace(id, op, detail string) *Trace {
	t := &Trace{tracer: tr, id: id, op: op, start: time.Now()}
	t.detail = detail
	return t
}

// SlowThreshold reports the configured slow-trace threshold.
func (tr *Tracer) SlowThreshold() time.Duration {
	if tr == nil {
		return 0
	}
	return tr.slowThresh
}

// SpanView is the JSON shape of one span.
type SpanView struct {
	Stage        string `json:"stage"`
	OffsetMicros int64  `json:"offset_micros"`
	DurMicros    int64  `json:"dur_micros"`
	Note         string `json:"note,omitempty"`
}

// TraceView is the JSON shape of one finished trace, as served by
// /api/debug/traces and printed by `annoda traces`.
type TraceView struct {
	ID        string     `json:"id"`
	Op        string     `json:"op"`
	Detail    string     `json:"detail,omitempty"`
	Start     time.Time  `json:"start"`
	DurMicros int64      `json:"dur_micros"`
	Err       string     `json:"error,omitempty"`
	Spans     []SpanView `json:"spans,omitempty"`
}

func (t *Trace) view() TraceView {
	// Finished traces are immutable; no lock needed.
	v := TraceView{
		ID:        t.id,
		Op:        t.op,
		Detail:    t.detail,
		Start:     t.start,
		DurMicros: t.end.Sub(t.start).Microseconds(),
		Err:       t.err,
	}
	if len(t.spans) > 0 {
		v.Spans = make([]SpanView, len(t.spans))
		for i, s := range t.spans {
			v.Spans[i] = SpanView{
				Stage:        s.Stage,
				OffsetMicros: s.Offset.Microseconds(),
				DurMicros:    s.Duration.Microseconds(),
				Note:         s.Note,
			}
		}
	}
	return v
}

func views(ts []*Trace) []TraceView {
	out := make([]TraceView, len(ts))
	for i, t := range ts {
		out[i] = t.view()
	}
	return out
}

// Recent returns the recent-trace ring, newest first.
func (tr *Tracer) Recent() []TraceView {
	if tr == nil {
		return nil
	}
	return views(tr.recent.snapshot())
}

// Slow returns the slow-trace ring, newest first.
func (tr *Tracer) Slow() []TraceView {
	if tr == nil {
		return nil
	}
	return views(tr.slow.snapshot())
}

// Request IDs: an 8-hex-digit per-process prefix (crypto/rand, so two
// servers behind one balancer do not collide) plus a monotonically
// increasing hex counter. Cheap enough to mint for every request.
var (
	reqIDPrefix = func() string {
		var b [4]byte
		if _, err := crand.Read(b[:]); err != nil {
			// Fall back to a fixed prefix; IDs stay unique per process.
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	reqIDCtr atomic.Uint64
)

// NewRequestID mints a process-unique request ID like "3f9ac81d-0000002a".
func NewRequestID() string {
	n := reqIDCtr.Add(1)
	buf := make([]byte, 0, 17)
	buf = append(buf, reqIDPrefix...)
	buf = append(buf, '-')
	if n < 1<<32 {
		// Zero-pad to 8 digits for visual alignment in logs.
		s := strconv.FormatUint(n, 16)
		for i := len(s); i < 8; i++ {
			buf = append(buf, '0')
		}
		buf = append(buf, s...)
	} else {
		buf = strconv.AppendUint(buf, n, 16)
	}
	return string(buf)
}

// ctxKey is the context key for a request's trace.
type ctxKey struct{}

// ContextWithTrace attaches t to ctx. Attaching nil returns ctx
// unchanged, so untraced requests add no context layer.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
