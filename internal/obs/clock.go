package obs

import "time"

// This file is the one sanctioned home for wall-clock reads in production
// code: the nowalltime analyzer flags time.Now/Since/Until everywhere else,
// so every latency measurement in the repository flows through here. The
// wrappers are trivially inlinable — they cost nothing over the direct
// calls — and exist so the clock has exactly one door.

// Now returns the current wall-clock time.
func Now() time.Time { return time.Now() }

// Since returns the time elapsed since t.
func Since(t time.Time) time.Duration { return time.Since(t) }

// Until returns the duration until t.
func Until(t time.Time) time.Duration { return time.Until(t) }
