package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a hand-rolled checker for Prometheus text exposition
// format 0.0.4 — the contract behind GET /metrics. CI scrapes a live
// server and runs the scrape through ValidateExposition (via
// `annoda-lint -prom`), so a malformed exposition fails the build rather
// than a production scrape.

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the sample identity as name{k="v",...} with labels sorted.
func (s Sample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Exposition is a parsed scrape.
type Exposition struct {
	Samples []Sample
	Types   map[string]string // family name -> counter|gauge|histogram|...
}

// SumCount totals every sample named exactly name (across all label
// sets) — e.g. SumCount("annoda_http_request_duration_seconds_count")
// yields the number of HTTP requests observed.
func (e *Exposition) SumCount(name string) float64 {
	var total float64
	for _, s := range e.Samples {
		if s.Name == name {
			total += s.Value
		}
	}
	return total
}

// Value returns the value of the unique sample with the given name and
// labels (matched as a subset of the sample's labels), and whether it
// was found.
func (e *Exposition) Value(name string, labels map[string]string) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// ValidateExposition parses r as Prometheus text exposition format 0.0.4
// and checks structural invariants: metric and label name syntax, one
// TYPE per family declared before its samples, family sample groups not
// interleaved, parseable values, counters non-negative, and histogram
// families complete (cumulative non-decreasing buckets, an le="+Inf"
// bucket equal to _count). Returns the parsed exposition on success and
// a line-numbered error otherwise.
func ValidateExposition(r io.Reader) (*Exposition, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("exposition is empty")
	}
	if data[len(data)-1] != '\n' {
		return nil, fmt.Errorf("exposition must end with a newline")
	}

	exp := &Exposition{Types: make(map[string]string)}
	typed := make(map[string]bool)  // family has samples already
	closed := make(map[string]bool) // family group ended
	current := ""                   // family whose group is open
	helped := make(map[string]bool) // HELP seen
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, cerr := parseComment(line)
			if cerr != nil {
				return nil, fmt.Errorf("line %d: %v", ln, cerr)
			}
			switch kind {
			case "HELP":
				if helped[name] {
					return nil, fmt.Errorf("line %d: second HELP for %s", ln, name)
				}
				helped[name] = true
			case "TYPE":
				if _, dup := exp.Types[name]; dup {
					return nil, fmt.Errorf("line %d: second TYPE for %s", ln, name)
				}
				if typed[name] {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", ln, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q for %s", ln, rest, name)
				}
				exp.Types[name] = rest
			}
			continue
		}
		s, serr := parseSample(line)
		if serr != nil {
			return nil, fmt.Errorf("line %d: %v", ln, serr)
		}
		fam := familyOf(s.Name, exp.Types)
		if fam != current {
			if current != "" {
				closed[current] = true
			}
			if closed[fam] {
				return nil, fmt.Errorf("line %d: samples for %s are not grouped together", ln, fam)
			}
			current = fam
		}
		typed[fam] = true
		if exp.Types[fam] == "counter" && s.Value < 0 {
			return nil, fmt.Errorf("line %d: counter %s has negative value %v", ln, s.Name, s.Value)
		}
		exp.Samples = append(exp.Samples, s)
	}

	if err := checkHistograms(exp); err != nil {
		return nil, err
	}
	return exp, nil
}

// familyOf maps a sample name onto its TYPE'd family: histogram and
// summary samples carry _bucket/_sum/_count suffixes.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimLeft(body, " ")
	switch {
	case strings.HasPrefix(body, "HELP "):
		kind = "HELP"
		body = strings.TrimPrefix(body, "HELP ")
	case strings.HasPrefix(body, "TYPE "):
		kind = "TYPE"
		body = strings.TrimPrefix(body, "TYPE ")
	default:
		// Free-form comment: ignored.
		return "", "", "", nil
	}
	sp := strings.IndexByte(body, ' ')
	if sp < 0 {
		if kind == "HELP" {
			// HELP with empty docstring is legal.
			name = body
		} else {
			return "", "", "", fmt.Errorf("malformed %s comment", kind)
		}
	} else {
		name, rest = body[:sp], body[sp+1:]
	}
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("%s names invalid metric %q", kind, name)
	}
	return kind, name, rest, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name at %q", line)
	}
	if i < len(line) && line[i] == '{' {
		labels, n, err := parseLabels(line[i:])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		i += n
	}
	rest := strings.TrimLeft(line[i:], " \t")
	if rest == "" {
		return s, fmt.Errorf("missing value in %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) > 2 {
		return s, fmt.Errorf("trailing garbage in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseLabels consumes a {k="v",...} block starting at s[0]=='{' and
// returns the labels and the number of bytes consumed.
func parseLabels(s string) (map[string]string, int, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, i + 1, nil
		}
		start := i
		for i < len(s) && isLabelChar(s[i], i == start) {
			i++
		}
		name := s[start:i]
		if name == "" || !validLabelName(name) {
			return nil, 0, fmt.Errorf("invalid label name in %q", s)
		}
		if i >= len(s) || s[i] != '=' {
			return nil, 0, fmt.Errorf("missing '=' after label %s", name)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return nil, 0, fmt.Errorf("label %s value is not quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, 0, fmt.Errorf("unterminated label value for %s", name)
			}
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, 0, fmt.Errorf("dangling escape in label %s", name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, 0, fmt.Errorf("bad escape \\%c in label %s", s[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return nil, 0, fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// checkHistograms verifies each TYPE'd histogram family: buckets are
// cumulative and non-decreasing in le, an le="+Inf" bucket exists, and it
// equals _count — per distinct non-le label set.
func checkHistograms(exp *Exposition) error {
	type hseries struct {
		les    []float64
		counts []float64
		inf    float64
		hasInf bool
		count  float64
		hasCnt bool
	}
	groups := make(map[string]*hseries)
	key := func(fam string, labels map[string]string) string {
		ks := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				ks = append(ks, k)
			}
		}
		sort.Strings(ks)
		var b strings.Builder
		b.WriteString(fam)
		for _, k := range ks {
			fmt.Fprintf(&b, "|%s=%q", k, labels[k])
		}
		return b.String()
	}
	for _, s := range exp.Samples {
		fam := familyOf(s.Name, exp.Types)
		if exp.Types[fam] != "histogram" {
			continue
		}
		g := groups[key(fam, s.Labels)]
		if g == nil {
			g = &hseries{}
			groups[key(fam, s.Labels)] = g
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s bucket without le label", fam)
			}
			if le == "+Inf" {
				g.inf, g.hasInf = s.Value, true
			} else {
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("histogram %s has unparseable le=%q", fam, le)
				}
				g.les = append(g.les, f)
				g.counts = append(g.counts, s.Value)
			}
		case strings.HasSuffix(s.Name, "_count"):
			g.count, g.hasCnt = s.Value, true
		}
	}
	for k, g := range groups {
		if !g.hasInf {
			return fmt.Errorf("histogram series %s has no le=\"+Inf\" bucket", k)
		}
		if !g.hasCnt {
			return fmt.Errorf("histogram series %s has no _count", k)
		}
		if g.inf != g.count {
			return fmt.Errorf("histogram series %s: +Inf bucket %v != count %v", k, g.inf, g.count)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("histogram series %s: le bounds not increasing", k)
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("histogram series %s: bucket counts not cumulative", k)
			}
		}
		if n := len(g.counts); n > 0 && g.inf < g.counts[n-1] {
			return fmt.Errorf("histogram series %s: +Inf bucket below last finite bucket", k)
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isLabelChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func isLabelChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
