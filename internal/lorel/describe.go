package lorel

import (
	"fmt"
	"strings"

	"repro/internal/oem"
)

// EvalCounts accumulates per-stage cardinalities for one plan evaluation.
// It follows the same nil-inert discipline as internal/obs: every note
// method is safe on a nil receiver and costs one predictable branch, so the
// evaluator instruments its hot sites unconditionally and the plain Eval
// path pays near nothing. A counts struct belongs to one evaluation — it is
// not safe for concurrent use.
type EvalCounts struct {
	RootsMatched   int   `json:"roots_matched"`   // objects bound by the first from clause
	FromMatched    []int `json:"from_matched"`    // objects matched per from-clause NFA, summed over enumerations
	SelectMatched  []int `json:"select_matched"`  // objects emitted per select-item NFA, before oid dedup
	ObjectsVisited int   `json:"objects_visited"` // (NFA state, object) product states visited across from/select traversals
	WhereEvals     int   `json:"where_evals"`     // where-clause evaluations: one per candidate binding tuple
	Pruned         int   `json:"pruned"`          // candidate bindings rejected by the where clause
	Bindings       int   `json:"bindings"`        // candidate bindings that survived
}

func (ec *EvalCounts) noteFrom(level, matched, visited int) {
	if ec == nil {
		return
	}
	for len(ec.FromMatched) <= level {
		ec.FromMatched = append(ec.FromMatched, 0)
	}
	ec.FromMatched[level] += matched
	if level == 0 {
		ec.RootsMatched += matched
	}
	ec.ObjectsVisited += visited
}

func (ec *EvalCounts) noteSelect(item, matched, visited int) {
	if ec == nil {
		return
	}
	for len(ec.SelectMatched) <= item {
		ec.SelectMatched = append(ec.SelectMatched, 0)
	}
	ec.SelectMatched[item] += matched
	ec.ObjectsVisited += visited
}

func (ec *EvalCounts) noteWhere(kept bool) {
	if ec == nil {
		return
	}
	ec.WhereEvals++
	if kept {
		ec.Bindings++
	} else {
		ec.Pruned++
	}
}

// EvalCounted runs the compiled plan like Eval while accumulating per-stage
// cardinalities into ec. A nil ec is allowed and makes it exactly Eval.
func (p *Plan) EvalCounted(g *oem.Graph, ec *EvalCounts) (*Result, error) {
	return p.eval(g, ec)
}

// Describe renders the compiled plan as a one-plan-per-line tree: each
// from clause with its bind variable and NFA size, the where clause as an
// indented condition tree (literals included), and each select item with
// its answer edge label. The format is stable prose for humans and tests,
// not a machine interface — /api/explain carries the structured form.
func (p *Plan) Describe() string {
	var sb strings.Builder
	sb.WriteString("plan: ")
	sb.WriteString(p.q.String())
	sb.WriteByte('\n')
	for i, f := range p.q.From {
		fmt.Fprintf(&sb, "├─ from[%d]: %s as %s (nfa: %d states)\n",
			i, f.Path.String(), f.BindName(), len(p.from[i].edges))
	}
	if p.q.Where == nil {
		sb.WriteString("├─ where: (none)\n")
	} else {
		sb.WriteString("├─ where:\n")
		describeCond(&sb, p.q.Where, "│    ")
	}
	for i, s := range p.q.Select {
		marker := "├─"
		if i == len(p.q.Select)-1 {
			marker = "└─"
		}
		fmt.Fprintf(&sb, "%s select[%d]: %s as %s (nfa: %d states)\n",
			marker, i, s.Path.String(), s.EdgeLabel(), len(p.sel[i].edges))
	}
	return sb.String()
}

// CondString renders a condition in the query's canonical syntax — the
// stable "predicate shape" key the statistics table and EXPLAIN use.
func CondString(c Cond) string {
	if c == nil {
		return "true"
	}
	return condString(c)
}

// describeCond renders a condition tree: boolean connectives get their own
// lines with children indented beneath them, leaves render via condString.
func describeCond(sb *strings.Builder, c Cond, prefix string) {
	switch x := c.(type) {
	case AndCond:
		sb.WriteString(prefix)
		sb.WriteString("and\n")
		describeCond(sb, x.L, prefix+"  ")
		describeCond(sb, x.R, prefix+"  ")
	case OrCond:
		sb.WriteString(prefix)
		sb.WriteString("or\n")
		describeCond(sb, x.L, prefix+"  ")
		describeCond(sb, x.R, prefix+"  ")
	case NotCond:
		sb.WriteString(prefix)
		sb.WriteString("not\n")
		describeCond(sb, x.E, prefix+"  ")
	default:
		sb.WriteString(prefix)
		sb.WriteString(condString(c))
		sb.WriteByte('\n')
	}
}
