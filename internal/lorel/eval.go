package lorel

import (
	"fmt"

	"repro/internal/oem"
)

// Result is the evaluation output: a fresh OEM graph holding the "answer"
// complex object. "In Lorel, the result is always a collection of OEM
// objects, and duplicate elimination is by oid" (paper §4.1) — the Origin
// map records which source object each answer object was coerced from, and
// duplicates (same select label, same source oid) are eliminated.
type Result struct {
	Graph  *oem.Graph
	Answer oem.OID
	// Origin maps answer-graph oids back to the queried graph's oids;
	// navigation uses it to follow answers back to their sources.
	Origin map[oem.OID]oem.OID
	// Bindings counts the variable assignments that satisfied the where
	// clause (for optimizer statistics).
	Bindings int
}

// Size returns the number of edges on the answer object.
func (r *Result) Size() int {
	return len(r.Graph.Get(r.Answer).Refs)
}

// Eval runs a query against one OEM graph by compiling it and evaluating
// the plan once. Callers that evaluate the same query shape repeatedly
// should Compile once and reuse the Plan.
func Eval(g *oem.Graph, q *Query) (*Result, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	return p.Eval(g)
}

// importShared copies the subgraph rooted at src into dst, reusing objects
// already imported (so shared structure — and dedup by oid — survives).
func importShared(dst *oem.Graph, srcG *oem.Graph, src oem.OID, imported map[oem.OID]oem.OID) (oem.OID, error) {
	if d, ok := imported[src]; ok {
		return d, nil
	}
	so := srcG.Get(src)
	if so == nil {
		return 0, fmt.Errorf("lorel: import of missing object %v", src)
	}
	switch so.Kind {
	case oem.KindComplex:
		d := dst.NewComplex()
		imported[src] = d // registered before recursing so cycles terminate
		if len(so.Refs) == 0 {
			return d, nil
		}
		refs := make([]oem.Ref, 0, len(so.Refs))
		for _, r := range so.Refs {
			t, err := importShared(dst, srcG, r.Target, imported)
			if err != nil {
				return 0, err
			}
			refs = append(refs, oem.Ref{Label: r.Label, Target: t})
		}
		if err := dst.SetRefs(d, refs); err != nil {
			return 0, err
		}
		return d, nil
	case oem.KindInt:
		d := dst.NewInt(so.Int)
		imported[src] = d
		return d, nil
	case oem.KindReal:
		d := dst.NewReal(so.Real)
		imported[src] = d
		return d, nil
	case oem.KindString:
		d := dst.NewString(so.Str)
		imported[src] = d
		return d, nil
	case oem.KindURL:
		d := dst.NewURL(so.Str)
		imported[src] = d
		return d, nil
	case oem.KindBool:
		d := dst.NewBool(so.Bool)
		imported[src] = d
		return d, nil
	case oem.KindGif:
		d := dst.NewGif(so.Raw)
		imported[src] = d
		return d, nil
	}
	return 0, fmt.Errorf("lorel: cannot import %v", so.Kind)
}

// EvalCond evaluates one condition under an explicit variable binding by
// compiling it on the fly — a convenience shim for one-off evaluation. It
// pays a full condition compile per call; anything evaluating the same
// condition repeatedly (the mediator's pushdown compiles once per source)
// should use CompileCond.
func EvalCond(g *oem.Graph, env map[string]oem.OID, c Cond) (bool, error) {
	cp, err := CompileCond(c)
	if err != nil {
		return false, err
	}
	return cp.Eval(g, env)
}

func litObject(l *Literal) *oem.Object {
	switch l.Kind {
	case LitString:
		return &oem.Object{Kind: oem.KindString, Str: l.S}
	case LitInt:
		return &oem.Object{Kind: oem.KindInt, Int: l.I}
	case LitReal:
		return &oem.Object{Kind: oem.KindReal, Real: l.F}
	case LitBool:
		return &oem.Object{Kind: oem.KindBool, Bool: l.B}
	}
	return &oem.Object{}
}
