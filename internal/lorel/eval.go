package lorel

import (
	"fmt"

	"repro/internal/oem"
)

// Result is the evaluation output: a fresh OEM graph holding the "answer"
// complex object. "In Lorel, the result is always a collection of OEM
// objects, and duplicate elimination is by oid" (paper §4.1) — the Origin
// map records which source object each answer object was coerced from, and
// duplicates (same select label, same source oid) are eliminated.
type Result struct {
	Graph  *oem.Graph
	Answer oem.OID
	// Origin maps answer-graph oids back to the queried graph's oids;
	// navigation uses it to follow answers back to their sources.
	Origin map[oem.OID]oem.OID
	// Bindings counts the variable assignments that satisfied the where
	// clause (for optimizer statistics).
	Bindings int
}

// Size returns the number of edges on the answer object.
func (r *Result) Size() int {
	return len(r.Graph.Get(r.Answer).Refs)
}

// Eval runs a query against one OEM graph. Path bases resolve first against
// range variables bound by earlier from-clauses, then against the graph's
// named roots.
func Eval(g *oem.Graph, q *Query) (*Result, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("lorel: query has no from clause")
	}
	res := &Result{Graph: oem.NewGraph(), Origin: make(map[oem.OID]oem.OID)}
	res.Answer = res.Graph.NewComplex()
	res.Graph.SetRoot("answer", res.Answer)

	// Precompile from-clause and select-item NFAs.
	fromNFA := make([]*nfa, len(q.From))
	for i, f := range q.From {
		fromNFA[i] = compileSteps(f.Path.Steps)
	}
	selNFA := make([]*nfa, len(q.Select))
	for i, s := range q.Select {
		selNFA[i] = compileSteps(s.Path.Steps)
	}

	imported := make(map[oem.OID]oem.OID) // source oid -> answer oid
	type edgeKey struct {
		label string
		src   oem.OID
	}
	added := make(map[edgeKey]bool)

	env := make(map[string]oem.OID)
	var evalErr error
	var recur func(level int) bool
	recur = func(level int) bool {
		if level == len(q.From) {
			ok, err := evalCond(g, env, q.Where)
			if err != nil {
				evalErr = err
				return false
			}
			if !ok {
				return true
			}
			res.Bindings++
			for i, item := range q.Select {
				starts, err := pathStarts(g, env, item.Path)
				if err != nil {
					evalErr = err
					return false
				}
				label := item.EdgeLabel()
				for _, src := range evalNFA(g, selNFA[i], starts) {
					k := edgeKey{label: label, src: src}
					if added[k] {
						continue // duplicate elimination by oid
					}
					added[k] = true
					dst, ok := imported[src]
					if !ok {
						var err error
						dst, err = importShared(res.Graph, g, src, imported)
						if err != nil {
							evalErr = err
							return false
						}
						res.Origin[dst] = src
					}
					if err := res.Graph.AddRef(res.Answer, label, dst); err != nil {
						evalErr = err
						return false
					}
				}
			}
			return true
		}
		f := q.From[level]
		starts, err := pathStarts(g, env, f.Path)
		if err != nil {
			evalErr = err
			return false
		}
		name := f.BindName()
		for _, oid := range evalNFA(g, fromNFA[level], starts) {
			env[name] = oid
			if !recur(level + 1) {
				return false
			}
		}
		delete(env, name)
		return true
	}
	recur(0)
	if evalErr != nil {
		return nil, evalErr
	}
	return res, nil
}

// importShared copies the subgraph rooted at src into dst, reusing objects
// already imported (so shared structure — and dedup by oid — survives).
func importShared(dst *oem.Graph, srcG *oem.Graph, src oem.OID, imported map[oem.OID]oem.OID) (oem.OID, error) {
	if d, ok := imported[src]; ok {
		return d, nil
	}
	so := srcG.Get(src)
	if so == nil {
		return 0, fmt.Errorf("lorel: import of missing object %v", src)
	}
	switch so.Kind {
	case oem.KindComplex:
		d := dst.NewComplex()
		imported[src] = d
		for _, r := range so.Refs {
			t, err := importShared(dst, srcG, r.Target, imported)
			if err != nil {
				return 0, err
			}
			if err := dst.AddRef(d, r.Label, t); err != nil {
				return 0, err
			}
		}
		return d, nil
	case oem.KindInt:
		d := dst.NewInt(so.Int)
		imported[src] = d
		return d, nil
	case oem.KindReal:
		d := dst.NewReal(so.Real)
		imported[src] = d
		return d, nil
	case oem.KindString:
		d := dst.NewString(so.Str)
		imported[src] = d
		return d, nil
	case oem.KindURL:
		d := dst.NewURL(so.Str)
		imported[src] = d
		return d, nil
	case oem.KindBool:
		d := dst.NewBool(so.Bool)
		imported[src] = d
		return d, nil
	case oem.KindGif:
		d := dst.NewGif(so.Raw)
		imported[src] = d
		return d, nil
	}
	return 0, fmt.Errorf("lorel: cannot import %v", so.Kind)
}

// pathStarts resolves a path's base to its start objects: a bound range
// variable first, then a graph root. Unknown bases are errors — typos in
// queries should not silently yield empty answers.
func pathStarts(g *oem.Graph, env map[string]oem.OID, p Path) ([]oem.OID, error) {
	if oid, ok := env[p.Base]; ok {
		return []oem.OID{oid}, nil
	}
	// Roots match case-insensitively like labels.
	for _, r := range g.Roots() {
		if equalFold(r.Name, p.Base) {
			return []oem.OID{r.OID}, nil
		}
	}
	return nil, fmt.Errorf("lorel: unknown variable or root %q", p.Base)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// EvalCond evaluates one condition under an explicit variable binding; the
// mediator uses it to push single-variable predicates down to per-source
// entity streams before fusion.
func EvalCond(g *oem.Graph, env map[string]oem.OID, c Cond) (bool, error) {
	return evalCond(g, env, c)
}

func evalCond(g *oem.Graph, env map[string]oem.OID, c Cond) (bool, error) {
	switch x := c.(type) {
	case nil:
		return true, nil
	case AndCond:
		l, err := evalCond(g, env, x.L)
		if err != nil || !l {
			return false, err
		}
		return evalCond(g, env, x.R)
	case OrCond:
		l, err := evalCond(g, env, x.L)
		if err != nil {
			return false, err
		}
		if l {
			return true, nil
		}
		return evalCond(g, env, x.R)
	case NotCond:
		v, err := evalCond(g, env, x.E)
		if err != nil {
			return false, err
		}
		return !v, nil
	case ExistsCond:
		starts, err := pathStarts(g, env, x.P)
		if err != nil {
			return false, err
		}
		return len(EvalPath(g, x.P.Steps, starts)) > 0, nil
	case CmpCond:
		return evalCmp(g, env, x)
	}
	return false, fmt.Errorf("lorel: unknown condition %T", c)
}

// evalCmp applies existential comparison semantics: the predicate is true
// when SOME value pair drawn from the two operands satisfies the operator.
func evalCmp(g *oem.Graph, env map[string]oem.OID, c CmpCond) (bool, error) {
	ls, err := operandValues(g, env, c.L)
	if err != nil {
		return false, err
	}
	rs, err := operandValues(g, env, c.R)
	if err != nil {
		return false, err
	}
	for _, l := range ls {
		for _, r := range rs {
			if c.Op == OpLike {
				if r.Kind == oem.KindString && oem.Like(l, r.Str) {
					return true, nil
				}
				continue
			}
			cmp, ok := oem.Compare(l, r)
			if !ok {
				continue
			}
			switch c.Op {
			case OpEq:
				if cmp == 0 {
					return true, nil
				}
			case OpNe:
				if cmp != 0 {
					return true, nil
				}
			case OpLt:
				if cmp < 0 {
					return true, nil
				}
			case OpLe:
				if cmp <= 0 {
					return true, nil
				}
			case OpGt:
				if cmp > 0 {
					return true, nil
				}
			case OpGe:
				if cmp >= 0 {
					return true, nil
				}
			}
		}
	}
	return false, nil
}

// operandValues materializes an operand into atomic objects: literal values
// become synthetic atoms; paths yield the atomic objects they reach
// (complex objects are skipped — they are incomparable in Lorel).
func operandValues(g *oem.Graph, env map[string]oem.OID, o Operand) ([]*oem.Object, error) {
	if o.Lit != nil {
		return []*oem.Object{litObject(o.Lit)}, nil
	}
	starts, err := pathStarts(g, env, *o.Path)
	if err != nil {
		return nil, err
	}
	var out []*oem.Object
	for _, oid := range EvalPath(g, o.Path.Steps, starts) {
		obj := g.Get(oid)
		if obj != nil && obj.IsAtomic() {
			out = append(out, obj)
		}
	}
	return out, nil
}

func litObject(l *Literal) *oem.Object {
	switch l.Kind {
	case LitString:
		return &oem.Object{Kind: oem.KindString, Str: l.S}
	case LitInt:
		return &oem.Object{Kind: oem.KindInt, Int: l.I}
	case LitReal:
		return &oem.Object{Kind: oem.KindReal, Real: l.F}
	case LitBool:
		return &oem.Object{Kind: oem.KindBool, Bool: l.B}
	}
	return &oem.Object{}
}
