package lorel

import (
	"strings"

	"repro/internal/oem"
)

// Path expressions are regular expressions over edge labels; they compile
// to a small Thompson NFA which is then evaluated as a product traversal of
// (NFA state, graph object). Matching is case-insensitive on labels, per
// Lorel's forgiving treatment of semi-structured vocabularies: label steps
// are folded once at compile time and matched against the graph's folded
// label index, so the traversal itself never case-converts.

type matchKind uint8

const (
	mEps matchKind = iota
	mLabel
	mAny
)

type nfaEdge struct {
	kind  matchKind
	label string // folded with oem.FoldLabel, for mLabel
	to    int
}

type nfa struct {
	edges  [][]nfaEdge // by state
	start  int
	accept int
}

func (n *nfa) newState() int {
	n.edges = append(n.edges, nil)
	return len(n.edges) - 1
}

func (n *nfa) addEdge(from int, e nfaEdge) {
	n.edges[from] = append(n.edges[from], e)
}

// compileSteps builds the NFA for a step sequence.
func compileSteps(steps []Step) *nfa {
	n := &nfa{}
	start := n.newState()
	cur := start
	for _, s := range steps {
		cur = compileStep(n, s, cur)
	}
	n.start = start
	n.accept = cur
	return n
}

// compileStep appends the fragment for one step after state `in` and
// returns its exit state.
func compileStep(n *nfa, s Step, in int) int {
	switch x := s.(type) {
	case LabelStep:
		out := n.newState()
		n.addEdge(in, nfaEdge{kind: mLabel, label: oem.FoldLabel(x.Name), to: out})
		return out
	case WildcardStep:
		out := n.newState()
		n.addEdge(in, nfaEdge{kind: mAny, to: out})
		return out
	case AnyPathStep:
		mid := n.newState()
		out := n.newState()
		n.addEdge(in, nfaEdge{kind: mEps, to: mid})
		n.addEdge(mid, nfaEdge{kind: mAny, to: mid})
		n.addEdge(mid, nfaEdge{kind: mEps, to: out})
		return out
	case GroupStep:
		gin := n.newState()
		gout := n.newState()
		n.addEdge(in, nfaEdge{kind: mEps, to: gin})
		for _, alt := range x.Alternatives {
			cur := gin
			for _, st := range alt {
				cur = compileStep(n, st, cur)
			}
			n.addEdge(cur, nfaEdge{kind: mEps, to: gout})
		}
		switch x.Quant {
		case QOptional:
			n.addEdge(gin, nfaEdge{kind: mEps, to: gout})
		case QStar:
			n.addEdge(gin, nfaEdge{kind: mEps, to: gout})
			n.addEdge(gout, nfaEdge{kind: mEps, to: gin})
		case QPlus:
			n.addEdge(gout, nfaEdge{kind: mEps, to: gin})
		}
		return gout
	}
	return in
}

type prodState struct {
	state int
	obj   oem.OID
}

// scratch is the reusable traversal state of one evaluation: the product
// visited set, the emit dedup set, the BFS queue, and small operand buffers.
// A Plan pools scratches so repeated evaluations of the same shape allocate
// none of this; result slices are always fresh (they outlive the call).
type scratch struct {
	visited  map[prodState]bool
	emitted  map[oem.OID]bool
	queue    []prodState
	startBuf [1]oem.OID
	lvals    []*oem.Object
	rvals    []*oem.Object
}

func newScratch() *scratch {
	return &scratch{
		visited: make(map[prodState]bool),
		emitted: make(map[oem.OID]bool),
	}
}

// evalNFA returns every object reachable from any start oid along a label
// path accepted by the NFA, in first-reached order. Label edges resolve
// through the graph's folded label index (one map hit per edge) rather than
// scanning and case-converting every ref.
// scratchMapMax bounds reuse of the visited/emitted maps: clearing a Go map
// costs time proportional to its bucket count, which never shrinks, so a
// map inflated by one large traversal (a from-clause over thousands of
// objects) would tax every small per-binding traversal after it. Oversized
// maps are dropped and reallocated small instead.
const scratchMapMax = 512

func evalNFA(g *oem.Graph, n *nfa, starts []oem.OID, sc *scratch) []oem.OID {
	if len(sc.visited) > scratchMapMax {
		sc.visited = make(map[prodState]bool)
	} else {
		clear(sc.visited)
	}
	if len(sc.emitted) > scratchMapMax {
		sc.emitted = make(map[oem.OID]bool)
	} else {
		clear(sc.emitted)
	}
	visited, emitted := sc.visited, sc.emitted
	// One lock acquisition for the whole traversal: the index handle is
	// read lock-free per edge afterwards.
	ix, haveIx := g.LabelIndex()
	queue := sc.queue[:0]
	push := func(s prodState) {
		if !visited[s] {
			visited[s] = true
			queue = append(queue, s)
		}
	}
	for _, o := range starts {
		push(prodState{state: n.start, obj: o})
	}
	var out []oem.OID
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		if cur.state == n.accept && !emitted[cur.obj] {
			emitted[cur.obj] = true
			out = append(out, cur.obj)
		}
		for _, e := range n.edges[cur.state] {
			switch e.kind {
			case mEps:
				push(prodState{state: e.to, obj: cur.obj})
			case mAny:
				obj := g.Get(cur.obj)
				if obj == nil || !obj.IsComplex() {
					continue
				}
				for _, r := range obj.Refs {
					push(prodState{state: e.to, obj: r.Target})
				}
			case mLabel:
				if haveIx {
					for _, t := range ix.Targets(cur.obj, e.label) {
						push(prodState{state: e.to, obj: t})
					}
					continue
				}
				// No index on this graph (it is still being mutated, e.g. a
				// per-source scratch graph under pushdown): scan the refs.
				// EqualFold is exactly the index's semantics — e.label is
				// canonical under oem.FoldLabel, and EqualFold(x, canon)
				// holds iff FoldLabel(x) == canon — and allocates nothing.
				obj := g.Get(cur.obj)
				if obj == nil || !obj.IsComplex() {
					continue
				}
				for _, r := range obj.Refs {
					if strings.EqualFold(r.Label, e.label) {
						push(prodState{state: e.to, obj: r.Target})
					}
				}
			}
		}
	}
	sc.queue = queue // keep the grown buffer for the next call
	return out
}

// EvalPath evaluates a path from explicit start objects, compiling it on
// the fly — a convenience shim for one-off evaluation. It pays a full
// compile and fresh scratch per call; repeated evaluation of a fixed shape
// should go through Compile.
func EvalPath(g *oem.Graph, steps []Step, starts []oem.OID) []oem.OID {
	return evalNFA(g, compileSteps(steps), starts, newScratch())
}
