package lorel

import (
	"strings"

	"repro/internal/oem"
)

// Path expressions are regular expressions over edge labels; they compile
// to a small Thompson NFA which is then evaluated as a product traversal of
// (NFA state, graph object). Matching is case-insensitive on labels, per
// Lorel's forgiving treatment of semi-structured vocabularies.

type matchKind uint8

const (
	mEps matchKind = iota
	mLabel
	mAny
)

type nfaEdge struct {
	kind  matchKind
	label string // lowercased, for mLabel
	to    int
}

type nfa struct {
	edges  [][]nfaEdge // by state
	start  int
	accept int
}

func (n *nfa) newState() int {
	n.edges = append(n.edges, nil)
	return len(n.edges) - 1
}

func (n *nfa) addEdge(from int, e nfaEdge) {
	n.edges[from] = append(n.edges[from], e)
}

// compileSteps builds the NFA for a step sequence.
func compileSteps(steps []Step) *nfa {
	n := &nfa{}
	start := n.newState()
	cur := start
	for _, s := range steps {
		cur = compileStep(n, s, cur)
	}
	n.start = start
	n.accept = cur
	return n
}

// compileStep appends the fragment for one step after state `in` and
// returns its exit state.
func compileStep(n *nfa, s Step, in int) int {
	switch x := s.(type) {
	case LabelStep:
		out := n.newState()
		n.addEdge(in, nfaEdge{kind: mLabel, label: strings.ToLower(x.Name), to: out})
		return out
	case WildcardStep:
		out := n.newState()
		n.addEdge(in, nfaEdge{kind: mAny, to: out})
		return out
	case AnyPathStep:
		mid := n.newState()
		out := n.newState()
		n.addEdge(in, nfaEdge{kind: mEps, to: mid})
		n.addEdge(mid, nfaEdge{kind: mAny, to: mid})
		n.addEdge(mid, nfaEdge{kind: mEps, to: out})
		return out
	case GroupStep:
		gin := n.newState()
		gout := n.newState()
		n.addEdge(in, nfaEdge{kind: mEps, to: gin})
		for _, alt := range x.Alternatives {
			cur := gin
			for _, st := range alt {
				cur = compileStep(n, st, cur)
			}
			n.addEdge(cur, nfaEdge{kind: mEps, to: gout})
		}
		switch x.Quant {
		case QOptional:
			n.addEdge(gin, nfaEdge{kind: mEps, to: gout})
		case QStar:
			n.addEdge(gin, nfaEdge{kind: mEps, to: gout})
			n.addEdge(gout, nfaEdge{kind: mEps, to: gin})
		case QPlus:
			n.addEdge(gout, nfaEdge{kind: mEps, to: gin})
		}
		return gout
	}
	return in
}

type prodState struct {
	state int
	obj   oem.OID
}

// evalNFA returns every object reachable from any start oid along a label
// path accepted by the NFA, in first-reached order.
func evalNFA(g *oem.Graph, n *nfa, starts []oem.OID) []oem.OID {
	visited := make(map[prodState]bool)
	var queue []prodState
	push := func(s prodState) {
		if !visited[s] {
			visited[s] = true
			queue = append(queue, s)
		}
	}
	for _, o := range starts {
		push(prodState{state: n.start, obj: o})
	}
	var out []oem.OID
	emitted := make(map[oem.OID]bool)
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		if cur.state == n.accept && !emitted[cur.obj] {
			emitted[cur.obj] = true
			out = append(out, cur.obj)
		}
		obj := g.Get(cur.obj)
		for _, e := range n.edges[cur.state] {
			switch e.kind {
			case mEps:
				push(prodState{state: e.to, obj: cur.obj})
			case mAny:
				if obj == nil || !obj.IsComplex() {
					continue
				}
				for _, r := range obj.Refs {
					push(prodState{state: e.to, obj: r.Target})
				}
			case mLabel:
				if obj == nil || !obj.IsComplex() {
					continue
				}
				for _, r := range obj.Refs {
					if strings.ToLower(r.Label) == e.label {
						push(prodState{state: e.to, obj: r.Target})
					}
				}
			}
		}
	}
	return out
}

// EvalPath evaluates a compiled path from explicit start objects; exported
// for the mediator, which routes paths through per-source models.
func EvalPath(g *oem.Graph, steps []Step, starts []oem.OID) []oem.OID {
	return evalNFA(g, compileSteps(steps), starts)
}
