package lorel

import (
	"fmt"
	"strings"
)

// Query is a parsed select-from-where query.
type Query struct {
	Select []SelectItem
	From   []FromClause
	Where  Cond // nil means true
}

// SelectItem projects one expression into the answer object. Label names
// the answer edge; when empty it defaults to the path's last label or the
// variable name.
type SelectItem struct {
	Path  Path
	Label string
}

// EdgeLabel returns the answer-edge label for this item.
func (s SelectItem) EdgeLabel() string {
	if s.Label != "" {
		return s.Label
	}
	if last := s.Path.lastLabel(); last != "" {
		return last
	}
	return s.Path.Base
}

// FromClause binds a range variable to the objects reached by a path.
// "from ANNODA-GML.Source S" binds S to every Source child.
type FromClause struct {
	Path Path
	Var  string // defaults to the path's last label when omitted
}

// BindName returns the variable name the clause binds.
func (f FromClause) BindName() string {
	if f.Var != "" {
		return f.Var
	}
	if last := f.Path.lastLabel(); last != "" {
		return last
	}
	return f.Path.Base
}

// Path is a general path expression: a base (variable or root name)
// followed by a regular expression over labels.
type Path struct {
	Base  string
	Steps []Step
}

func (p Path) lastLabel() string {
	for i := len(p.Steps) - 1; i >= 0; i-- {
		if l, ok := p.Steps[i].(LabelStep); ok {
			return l.Name
		}
	}
	return ""
}

// String renders the path in query syntax.
func (p Path) String() string {
	var sb strings.Builder
	sb.WriteString(p.Base)
	for _, s := range p.Steps {
		sb.WriteByte('.')
		sb.WriteString(stepString(s))
	}
	return sb.String()
}

// Step is one element of a path regular expression.
type Step interface{ isStep() }

// LabelStep matches exactly one edge with the given label
// (case-insensitive, as Lorel treats labels).
type LabelStep struct{ Name string }

// WildcardStep matches exactly one edge with any label ('%').
type WildcardStep struct{}

// AnyPathStep matches any sequence of edges, including none ('#').
type AnyPathStep struct{}

// GroupStep wraps a sub-path with alternation and an optional repetition
// suffix: (A.B|C)? , (X)* , (Y)+ .
type GroupStep struct {
	Alternatives [][]Step
	Quant        Quant
}

// Quant is a repetition quantifier.
type Quant uint8

// Quantifiers.
const (
	QOne      Quant = iota // exactly once (no suffix)
	QOptional              // ?
	QStar                  // *
	QPlus                  // +
)

func (LabelStep) isStep()    {}
func (WildcardStep) isStep() {}
func (AnyPathStep) isStep()  {}
func (GroupStep) isStep()    {}

func stepString(s Step) string {
	switch x := s.(type) {
	case LabelStep:
		return x.Name
	case WildcardStep:
		return "%"
	case AnyPathStep:
		return "#"
	case GroupStep:
		var alts []string
		for _, a := range x.Alternatives {
			var parts []string
			for _, st := range a {
				parts = append(parts, stepString(st))
			}
			alts = append(alts, strings.Join(parts, "."))
		}
		out := "(" + strings.Join(alts, "|") + ")"
		switch x.Quant {
		case QOptional:
			out += "?"
		case QStar:
			out += "*"
		case QPlus:
			out += "+"
		}
		return out
	}
	return "?"
}

// Cond is a boolean condition in the where clause.
type Cond interface{ isCond() }

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLike
)

var opNames = [...]string{"=", "!=", "<", "<=", ">", ">=", "like"}

func (o CmpOp) String() string { return opNames[o] }

// Operand is either a path or a literal.
type Operand struct {
	Path *Path // nil when literal
	Lit  *Literal
}

// Literal is a constant value.
type Literal struct {
	Kind LitKind
	S    string
	I    int64
	F    float64
	B    bool
}

// LitKind tags literals.
type LitKind uint8

// Literal kinds.
const (
	LitString LitKind = iota
	LitInt
	LitReal
	LitBool
)

// CmpCond compares two operands with existential path semantics: the
// condition holds if SOME pair of values reached by the operand paths
// satisfies the operator.
type CmpCond struct {
	Op   CmpOp
	L, R Operand
}

// ExistsCond holds when the path reaches at least one object.
type ExistsCond struct{ P Path }

// AndCond / OrCond / NotCond are the boolean connectives.
type AndCond struct{ L, R Cond }

// OrCond is disjunction.
type OrCond struct{ L, R Cond }

// NotCond is negation.
type NotCond struct{ E Cond }

func (CmpCond) isCond()    {}
func (ExistsCond) isCond() {}
func (AndCond) isCond()    {}
func (OrCond) isCond()     {}
func (NotCond) isCond()    {}

// String renders a query back to source form (used by the mediator's
// explain output and tests).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("select ")
	for i, s := range q.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(s.Path.String())
		if s.Label != "" {
			sb.WriteString(" as " + s.Label)
		}
	}
	sb.WriteString(" from ")
	for i, f := range q.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(f.Path.String())
		if f.Var != "" {
			sb.WriteString(" " + f.Var)
		}
	}
	if q.Where != nil {
		sb.WriteString(" where ")
		sb.WriteString(condString(q.Where))
	}
	return sb.String()
}

func condString(c Cond) string {
	switch x := c.(type) {
	case CmpCond:
		return fmt.Sprintf("%s %s %s", operandString(x.L), x.Op, operandString(x.R))
	case ExistsCond:
		return "exists " + x.P.String()
	case AndCond:
		return "(" + condString(x.L) + " and " + condString(x.R) + ")"
	case OrCond:
		return "(" + condString(x.L) + " or " + condString(x.R) + ")"
	case NotCond:
		return "not (" + condString(x.E) + ")"
	}
	return "?"
}

func operandString(o Operand) string {
	if o.Path != nil {
		return o.Path.String()
	}
	switch o.Lit.Kind {
	case LitString:
		return fmt.Sprintf("%q", o.Lit.S)
	case LitInt:
		return fmt.Sprintf("%d", o.Lit.I)
	case LitReal:
		return fmt.Sprintf("%g", o.Lit.F)
	case LitBool:
		return fmt.Sprintf("%v", o.Lit.B)
	}
	return "?"
}

// Clone returns a deep copy of the query; the mediator rewrites clones
// during decomposition.
func (q *Query) Clone() *Query {
	cp := &Query{}
	for _, s := range q.Select {
		cp.Select = append(cp.Select, SelectItem{Path: clonePath(s.Path), Label: s.Label})
	}
	for _, f := range q.From {
		cp.From = append(cp.From, FromClause{Path: clonePath(f.Path), Var: f.Var})
	}
	cp.Where = cloneCond(q.Where)
	return cp
}

func clonePath(p Path) Path {
	return Path{Base: p.Base, Steps: cloneSteps(p.Steps)}
}

func cloneSteps(steps []Step) []Step {
	out := make([]Step, len(steps))
	for i, s := range steps {
		if g, ok := s.(GroupStep); ok {
			ng := GroupStep{Quant: g.Quant}
			for _, alt := range g.Alternatives {
				ng.Alternatives = append(ng.Alternatives, cloneSteps(alt))
			}
			out[i] = ng
			continue
		}
		out[i] = s
	}
	return out
}

func cloneCond(c Cond) Cond {
	switch x := c.(type) {
	case nil:
		return nil
	case CmpCond:
		return CmpCond{Op: x.Op, L: cloneOperand(x.L), R: cloneOperand(x.R)}
	case ExistsCond:
		return ExistsCond{P: clonePath(x.P)}
	case AndCond:
		return AndCond{L: cloneCond(x.L), R: cloneCond(x.R)}
	case OrCond:
		return OrCond{L: cloneCond(x.L), R: cloneCond(x.R)}
	case NotCond:
		return NotCond{E: cloneCond(x.E)}
	}
	return c
}

func cloneOperand(o Operand) Operand {
	out := Operand{}
	if o.Path != nil {
		p := clonePath(*o.Path)
		out.Path = &p
	}
	if o.Lit != nil {
		l := *o.Lit
		out.Lit = &l
	}
	return out
}
