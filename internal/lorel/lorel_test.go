package lorel

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/oem"
)

// testGraph builds a small annotation-flavoured OEM database:
//
//	DB
//	 ├─ Gene (FOSB, human, 19q13) ── Links ── GO url, OMIM url
//	 ├─ Gene (JUNB, human, 19p13)  ── Links ── GO url
//	 └─ Gene (Tp53, mouse, 11p13)  (no links)
func testGraph(t testing.TB) *oem.Graph {
	g := oem.NewGraph()
	mkGene := func(sym, org, pos string, id int64, links map[string]string) oem.OID {
		refs := []oem.Ref{
			{Label: "LocusID", Target: g.NewInt(id)},
			{Label: "Symbol", Target: g.NewString(sym)},
			{Label: "Organism", Target: g.NewString(org)},
			{Label: "Position", Target: g.NewString(pos)},
		}
		if len(links) > 0 {
			var lrefs []oem.Ref
			for _, db := range []string{"GO", "OMIM"} {
				if u, ok := links[db]; ok {
					lrefs = append(lrefs, oem.Ref{Label: db, Target: g.NewURL(u)})
				}
			}
			refs = append(refs, oem.Ref{Label: "Links", Target: g.NewComplex(lrefs...)})
		}
		return g.NewComplex(refs...)
	}
	g1 := mkGene("FOSB", "Homo sapiens", "19q13", 2354, map[string]string{
		"GO": "http://go.test/GO:1", "OMIM": "http://omim.test/164772",
	})
	g2 := mkGene("JUNB", "Homo sapiens", "19p13", 3726, map[string]string{
		"GO": "http://go.test/GO:2",
	})
	g3 := mkGene("Tp53", "Mus musculus", "11p13", 22059, nil)
	root := g.NewComplex(
		oem.Ref{Label: "Gene", Target: g1},
		oem.Ref{Label: "Gene", Target: g2},
		oem.Ref{Label: "Gene", Target: g3},
	)
	g.SetRoot("DB", root)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func symbolsOf(t testing.TB, r *Result, label string) []string {
	t.Helper()
	var out []string
	for _, oid := range r.Graph.Children(r.Answer, label) {
		if s := r.Graph.StringUnder(oid, "Symbol"); s != "" {
			out = append(out, s)
			continue
		}
		if o := r.Graph.Get(oid); o != nil && o.IsAtomic() {
			out = append(out, o.AtomString())
		}
	}
	return out
}

func TestParseAndStringRoundTrip(t *testing.T) {
	cases := []string{
		`select X from DB.Gene X where X.Symbol = "FOSB"`,
		`select G.Symbol from DB.Gene G`,
		`select X from DB.Gene X where exists X.Links.GO`,
		`select X from DB.Gene X where X.LocusID > 3000 and not (X.Organism = "Mus musculus")`,
		`select X from DB.Gene X where X.Symbol like "%b"`,
		`select X from DB.(Gene|Pseudogene) X`,
		`select X from DB.# X where X.Symbol = "FOSB"`,
		`select X from DB.%.% X`,
		`select X from DB.(Gene)* X`,
		`select A, B.Name as N from DB.Gene A, DB.Gene B`,
	}
	for _, src := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		// Re-parse the rendering: must be stable.
		q2, err := Parse(q.String())
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", q.String(), err)
			continue
		}
		if q.String() != q2.String() {
			t.Errorf("unstable rendering: %q vs %q", q.String(), q2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`from DB.Gene X`,
		`select from DB`,
		`select X from`,
		`select X from DB.Gene X where`,
		`select X from DB.Gene X where X.Symbol =`,
		`select X from DB.Gene X where like "x"`,
		`select X from DB.(Gene X`,
		`select X from DB.Gene X where X.Symbol like 5`,
		`select X from DB..Gene X`,
		`select X from DB.Gene X extra`,
		`select X from DB.Gene X where X.select = 1`,
		`select X from DB.Gene X where "unterminated`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestPaperQueryShape(t *testing.T) {
	// The paper's §4.1 query (modulo the typo in the proceedings):
	// select X from ANNODA-GML.Source X where X.Name = "LocusLink".
	g := oem.NewGraph()
	mkSource := func(id int64, name string) oem.OID {
		return g.NewComplex(
			oem.Ref{Label: "SourceID", Target: g.NewInt(id)},
			oem.Ref{Label: "Name", Target: g.NewString(name)},
			oem.Ref{Label: "Content", Target: g.NewComplex()},
			oem.Ref{Label: "Structure", Target: g.NewComplex()},
		)
	}
	root := g.NewComplex(
		oem.Ref{Label: "Source", Target: mkSource(1, "LocusLink")},
		oem.Ref{Label: "Source", Target: mkSource(2, "GO")},
		oem.Ref{Label: "Source", Target: mkSource(3, "OMIM")},
	)
	g.SetRoot("ANNODA-GML", root)

	q := MustParse(`select X from ANNODA-GML.Source X where X.Name = "LocusLink"`)
	r, err := Eval(g, q)
	if err != nil {
		t.Fatal(err)
	}
	xs := r.Graph.Children(r.Answer, "X")
	if len(xs) != 1 {
		t.Fatalf("answer has %d X edges, want 1", len(xs))
	}
	// The answer object is new (coercion created fresh oids)...
	if r.Graph == g {
		t.Fatal("answer not in a fresh graph")
	}
	// ...and carries the paper's four children.
	for _, label := range []string{"SourceID", "Name", "Content", "Structure"} {
		if r.Graph.Child(xs[0], label) == 0 {
			t.Errorf("answer Source missing %s", label)
		}
	}
	if got := r.Graph.StringUnder(xs[0], "Name"); got != "LocusLink" {
		t.Errorf("Name = %q", got)
	}
}

func TestEvalSimpleFilter(t *testing.T) {
	g := testGraph(t)
	r, err := Eval(g, MustParse(`select X from DB.Gene X where X.Organism = "Homo sapiens"`))
	if err != nil {
		t.Fatal(err)
	}
	syms := symbolsOf(t, r, "X")
	if len(syms) != 2 || syms[0] != "FOSB" || syms[1] != "JUNB" {
		t.Fatalf("symbols = %v", syms)
	}
}

func TestEvalProjection(t *testing.T) {
	g := testGraph(t)
	r, err := Eval(g, MustParse(`select G.Symbol from DB.Gene G`))
	if err != nil {
		t.Fatal(err)
	}
	// Answer edges labelled by the last path label.
	vals := r.Graph.Children(r.Answer, "Symbol")
	if len(vals) != 3 {
		t.Fatalf("%d Symbol edges", len(vals))
	}
	if o := r.Graph.Get(vals[0]); o.Kind != oem.KindString {
		t.Errorf("projected value kind = %v", o.Kind)
	}
}

func TestEvalExistsAndNegation(t *testing.T) {
	g := testGraph(t)
	// Genes with GO links but no OMIM link — the Figure 5(b) pattern.
	r, err := Eval(g, MustParse(
		`select X from DB.Gene X where exists X.Links.GO and not exists X.Links.OMIM`))
	if err != nil {
		t.Fatal(err)
	}
	syms := symbolsOf(t, r, "X")
	if len(syms) != 1 || syms[0] != "JUNB" {
		t.Fatalf("symbols = %v", syms)
	}
	// Bare path predicate is an implicit exists.
	r2, err := Eval(g, MustParse(`select X from DB.Gene X where X.Links`))
	if err != nil {
		t.Fatal(err)
	}
	if got := symbolsOf(t, r2, "X"); len(got) != 2 {
		t.Fatalf("bare-path exists gave %v", got)
	}
}

func TestEvalCoercionIntString(t *testing.T) {
	g := testGraph(t)
	// LocusID is an integer; compare against a string literal.
	r, err := Eval(g, MustParse(`select X from DB.Gene X where X.LocusID = "2354"`))
	if err != nil {
		t.Fatal(err)
	}
	if got := symbolsOf(t, r, "X"); len(got) != 1 || got[0] != "FOSB" {
		t.Fatalf("coerced compare gave %v", got)
	}
	// Range comparisons.
	r2, _ := Eval(g, MustParse(`select X from DB.Gene X where X.LocusID >= 3726`))
	if got := symbolsOf(t, r2, "X"); len(got) != 2 {
		t.Fatalf("range compare gave %v", got)
	}
}

func TestEvalLike(t *testing.T) {
	g := testGraph(t)
	r, err := Eval(g, MustParse(`select X from DB.Gene X where X.Symbol like "%b"`))
	if err != nil {
		t.Fatal(err)
	}
	if got := symbolsOf(t, r, "X"); len(got) != 2 { // FOSB, JUNB (case-insensitive)
		t.Fatalf("like gave %v", got)
	}
}

func TestEvalWildcards(t *testing.T) {
	g := testGraph(t)
	// '%' matches one label: DB.% reaches the three genes.
	r, err := Eval(g, MustParse(`select X from DB.% X where X.Symbol = "FOSB"`))
	if err != nil {
		t.Fatal(err)
	}
	if got := symbolsOf(t, r, "X"); len(got) != 1 {
		t.Fatalf("wildcard gave %v", got)
	}
	// '#' reaches arbitrary depth: find url atoms anywhere. The answer edge
	// is labelled by the select expression — here the variable U.
	r2, err := Eval(g, MustParse(`select U from DB.#.GO U`))
	if err != nil {
		t.Fatal(err)
	}
	urls := r2.Graph.Children(r2.Answer, "U")
	if len(urls) != 2 {
		t.Fatalf("%d GO urls via #", len(urls))
	}
	// '#' with zero steps also matches the start object.
	r3, err := Eval(g, MustParse(`select X from DB.Gene X where exists X.#`))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Bindings != 3 {
		t.Fatalf("bindings = %d", r3.Bindings)
	}
}

func TestEvalAlternationAndQuantifiers(t *testing.T) {
	g := testGraph(t)
	r, err := Eval(g, MustParse(`select U from DB.Gene.Links.(GO|OMIM) U`))
	if err != nil {
		t.Fatal(err)
	}
	// Edge label defaults to the last literal label... inside a group there
	// is none, so it falls back to the base/last label: check total count.
	total := len(r.Graph.Get(r.Answer).Refs)
	if total != 3 {
		t.Fatalf("%d url edges, want 3", total)
	}
	// Optional group.
	r2, err := Eval(g, MustParse(`select X from DB.Gene.(Links)? X`))
	if err != nil {
		t.Fatal(err)
	}
	// Reaches 3 genes + 2 Links objects = 5 objects.
	if n := len(r2.Graph.Get(r2.Answer).Refs); n != 5 {
		t.Fatalf("optional group reached %d objects, want 5", n)
	}
}

func TestDuplicateEliminationByOID(t *testing.T) {
	g := testGraph(t)
	// Cross product would emit each gene three times without oid dedup.
	r, err := Eval(g, MustParse(`select X from DB.Gene X, DB.Gene Y`))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(r.Graph.Children(r.Answer, "X")); n != 3 {
		t.Fatalf("%d X edges, want 3 (dedup by oid)", n)
	}
	if r.Bindings != 9 {
		t.Errorf("bindings = %d, want 9", r.Bindings)
	}
}

func TestSharedStructurePreservedInAnswer(t *testing.T) {
	g := testGraph(t)
	// Selecting both a gene and its Links child must share the Links object
	// in the answer graph rather than copying it twice.
	r, err := Eval(g, MustParse(`select X, X.Links from DB.Gene X where X.Symbol = "FOSB"`))
	if err != nil {
		t.Fatal(err)
	}
	xs := r.Graph.Children(r.Answer, "X")
	ls := r.Graph.Children(r.Answer, "Links")
	if len(xs) != 1 || len(ls) != 1 {
		t.Fatalf("edges: X=%d Links=%d", len(xs), len(ls))
	}
	if r.Graph.Child(xs[0], "Links") != ls[0] {
		t.Error("Links object duplicated in answer graph")
	}
}

func TestMultipleFromVariablesJoin(t *testing.T) {
	g := testGraph(t)
	// Self-join: pairs of distinct genes from the same organism.
	q := MustParse(`select A from DB.Gene A, DB.Gene B where A.Organism = B.Organism and A.LocusID < B.LocusID`)
	r, err := Eval(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := symbolsOf(t, r, "A"); len(got) != 1 || got[0] != "FOSB" {
		t.Fatalf("join gave %v", got)
	}
}

func TestVariableScopingFromClauseChaining(t *testing.T) {
	g := testGraph(t)
	// Second from clause ranges over the first variable's children.
	q := MustParse(`select L from DB.Gene X, X.Links L where X.Symbol = "FOSB"`)
	r, err := Eval(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(r.Graph.Children(r.Answer, "L")); n != 1 {
		t.Fatalf("%d L edges", n)
	}
}

func TestUnknownBaseIsError(t *testing.T) {
	g := testGraph(t)
	if _, err := Eval(g, MustParse(`select X from Nowhere.Gene X`)); err == nil {
		t.Error("unknown root should be an error")
	}
	if _, err := Eval(g, MustParse(`select Z from DB.Gene X where Z.Symbol = "A"`)); err == nil {
		t.Error("unknown variable in where should be an error")
	}
}

func TestAnswerTextRendering(t *testing.T) {
	g := testGraph(t)
	r, _ := Eval(g, MustParse(`select X from DB.Gene X where X.Symbol = "FOSB"`))
	text := oem.TextString(r.Graph, "answer", r.Answer)
	if !strings.HasPrefix(text, "answer &1 complex") {
		t.Errorf("answer rendering:\n%s", text)
	}
	if !strings.Contains(text, `Symbol`) || !strings.Contains(text, `"FOSB"`) {
		t.Errorf("answer content missing:\n%s", text)
	}
}

func TestOriginTracksSources(t *testing.T) {
	g := testGraph(t)
	r, _ := Eval(g, MustParse(`select X from DB.Gene X`))
	for _, dst := range r.Graph.Children(r.Answer, "X") {
		src, ok := r.Origin[dst]
		if !ok {
			t.Fatal("answer object without origin")
		}
		if !oem.DeepEqual(g, src, r.Graph, dst) {
			t.Fatal("origin object differs from answer object")
		}
	}
}

func TestCaseInsensitiveLabelsAndRoots(t *testing.T) {
	g := testGraph(t)
	r, err := Eval(g, MustParse(`select X from db.gene X where X.symbol = "FOSB"`))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(r.Graph.Children(r.Answer, "gene")); n != 0 {
		// Edge label defaults to last label as written: "gene".
		if n != 1 {
			t.Fatalf("%d edges", n)
		}
	}
	if r.Bindings != 1 {
		t.Fatalf("bindings = %d", r.Bindings)
	}
}

func TestCycleSafety(t *testing.T) {
	g := oem.NewGraph()
	a := g.NewComplex()
	b := g.NewComplex(oem.Ref{Label: "next", Target: a})
	_ = g.AddRef(a, "next", b)
	_ = g.AddRef(a, "val", g.NewInt(1))
	g.SetRoot("R", a)
	// '#' over a cyclic graph must terminate.
	r, err := Eval(g, MustParse(`select V from R.#.val V`))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(r.Graph.Children(r.Answer, "V")); n != 1 {
		t.Fatalf("%d V edges", n)
	}
}

// TestPlanReuseMatchesEval: one compiled plan evaluated repeatedly (and
// against different graphs) must answer exactly like per-call Eval.
func TestPlanReuseMatchesEval(t *testing.T) {
	q := MustParse(`select X from DB.Gene X where exists X.Links.GO and X.Organism = "Homo sapiens"`)
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		g := testGraph(t)
		want, err := Eval(g, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.Eval(g)
		if err != nil {
			t.Fatal(err)
		}
		ws, gs := symbolsOf(t, want, "X"), symbolsOf(t, got, "X")
		if len(ws) == 0 || !reflect.DeepEqual(ws, gs) {
			t.Fatalf("round %d: plan answers %v, Eval answers %v", round, gs, ws)
		}
		if oem.TextString(want.Graph, "answer", want.Answer) != oem.TextString(got.Graph, "answer", got.Answer) {
			t.Fatalf("round %d: plan answer graph diverges from Eval's", round)
		}
	}
}

// TestPlanConcurrentEval: a cached plan is shared across request
// goroutines; concurrent Evals must not trample each other's scratch.
func TestPlanConcurrentEval(t *testing.T) {
	g := testGraph(t)
	plan, err := Compile(MustParse(`select X from DB.Gene X where exists X.Links.GO`))
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	sizes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := plan.Eval(g)
			if err != nil {
				t.Error(err)
				return
			}
			sizes[i] = r.Size()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if sizes[i] != 2 {
			t.Fatalf("goroutine %d saw %d answers, want 2", i, sizes[i])
		}
	}
}

// TestNonASCIIFolding: roots and labels must fold the same way for
// non-ASCII names. The old hand-rolled ASCII fold matched "DB" but not
// "ΔΒ", while labels went through Unicode ToLower — inconsistent.
func TestNonASCIIFolding(t *testing.T) {
	g := oem.NewGraph()
	gene := g.NewComplex(oem.Ref{Label: "Σύμβολο", Target: g.NewString("FOSB")})
	root := g.NewComplex(oem.Ref{Label: "Γονίδιο", Target: gene})
	g.SetRoot("Βάση-Ω", root)

	// Hand-built query (the lexer is a separate concern): uppercase base
	// and labels must match their lowercase graph forms.
	q := &Query{
		Select: []SelectItem{{Path: Path{Base: "X", Steps: []Step{LabelStep{Name: "ΣΎΜΒΟΛΟ"}}}, Label: "S"}},
		From:   []FromClause{{Path: Path{Base: "ΒΆΣΗ-Ω", Steps: []Step{LabelStep{Name: "ΓΟΝΊΔΙΟ"}}}, Var: "X"}},
	}
	r, err := Eval(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(r.Graph.Children(r.Answer, "S")); n != 1 {
		t.Fatalf("%d S edges, want 1 (non-ASCII root or label failed to fold)", n)
	}
}

// TestCondPlanReuse: a compiled condition evaluates correctly across many
// bindings, which is how the mediator's pushdown uses it.
func TestCondPlanReuse(t *testing.T) {
	g := testGraph(t)
	q := MustParse(`select X from DB.Gene X where X.Organism = "Homo sapiens"`)
	cp, err := CompileCond(q.Where)
	if err != nil {
		t.Fatal(err)
	}
	root := g.RootMatch("DB")
	human := 0
	for _, oid := range g.Children(root, "Gene") {
		ok, err := cp.Eval(g, map[string]oem.OID{"X": oid})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			human++
		}
	}
	if human != 2 {
		t.Fatalf("condition plan kept %d genes, want 2", human)
	}
	// Nil conditions compile to always-true.
	always, err := CompileCond(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := always.Eval(g, nil); err != nil || !ok {
		t.Fatalf("nil condition: %v %v, want true", ok, err)
	}
}

// TestIndexedAndScannedLabelMatchingAgree: the same label step must match
// identically whether the graph's label index is built (settled graphs) or
// the evaluator falls back to a ref scan (still-mutating graphs) — even for
// labels where Unicode ToLower and EqualFold disagree (Greek final sigma).
func TestIndexedAndScannedLabelMatchingAgree(t *testing.T) {
	g := oem.NewGraph()
	target := g.NewString("match")
	root := g.NewComplex(oem.Ref{Label: "Οδός", Target: target})
	g.SetRoot("R", root)

	steps := []Step{LabelStep{Name: "ΟΔΌΣ"}}
	// EvalPath does not build the index: ref-scan path.
	scanned := EvalPath(g, steps, []oem.OID{root})
	g.EnsureLabelIndex()
	indexed := EvalPath(g, steps, []oem.OID{root})
	if len(scanned) != 1 || len(indexed) != 1 || scanned[0] != indexed[0] {
		t.Fatalf("scan matched %v, index matched %v — label folding diverges", scanned, indexed)
	}
}
