package lorel

import (
	"fmt"
	"strconv"
	"strings"
)

// Grammar (keywords case-insensitive):
//
//	query    := SELECT items FROM froms [WHERE or]
//	items    := item (',' item)*
//	item     := path [AS ident]
//	froms    := from (',' from)*
//	from     := path [ident]              -- trailing ident is the variable
//	or       := and (OR and)*
//	and      := unary (AND unary)*
//	unary    := NOT unary | '(' or ')' | pred
//	pred     := EXISTS path | operand cmp operand | operand LIKE string
//	operand  := literal | path
//	path     := ident steps
//	steps    := ('.' step)*
//	step     := ident | '%' | '#' | group
//	group    := '(' alt ('|' alt)* ')' [quant]
//	alt      := step ('.' step)*
//	quant    := '?' | '*' | '+'

type parser struct {
	toks []token
	i    int
}

// Parse parses a Lorel query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tEOF {
		return nil, fmt.Errorf("lorel: trailing input at offset %d: %s", p.cur().pos, p.cur())
	}
	return q, nil
}

// MustParse panics on error; for tests and fixed internal queries.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == tIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

func isKeyword(t token) bool {
	if t.kind != tIdent {
		return false
	}
	switch strings.ToLower(t.text) {
	case "select", "from", "where", "and", "or", "not", "exists", "like", "as", "true", "false":
		return true
	}
	return false
}

func (p *parser) parseQuery() (*Query, error) {
	if !p.keyword("select") {
		return nil, fmt.Errorf("lorel: expected SELECT, got %s", p.cur())
	}
	q := &Query{}
	for {
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		item := SelectItem{Path: path}
		if p.keyword("as") {
			t := p.cur()
			if t.kind != tIdent {
				return nil, fmt.Errorf("lorel: expected label after AS, got %s", t)
			}
			p.i++
			item.Label = t.text
		}
		q.Select = append(q.Select, item)
		if p.cur().kind == tComma {
			p.i++
			continue
		}
		break
	}
	if !p.keyword("from") {
		return nil, fmt.Errorf("lorel: expected FROM, got %s", p.cur())
	}
	for {
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		f := FromClause{Path: path}
		if t := p.cur(); t.kind == tIdent && !isKeyword(t) {
			p.i++
			f.Var = t.text
		}
		q.From = append(q.From, f)
		if p.cur().kind == tComma {
			p.i++
			continue
		}
		break
	}
	if p.keyword("where") {
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = cond
	}
	return q, nil
}

func (p *parser) parseOr() (Cond, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = OrCond{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Cond, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = AndCond{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Cond, error) {
	if p.keyword("not") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NotCond{E: e}, nil
	}
	if p.cur().kind == tLParen {
		// Could be a parenthesized condition. Try it; a path can also start
		// with '(' only inside steps, never as a whole operand, so '(' here
		// is always a condition group.
		p.i++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tRParen {
			return nil, fmt.Errorf("lorel: expected ), got %s", p.cur())
		}
		p.i++
		return e, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Cond, error) {
	if p.keyword("exists") {
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		return ExistsCond{P: path}, nil
	}
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	var op CmpOp
	switch {
	case t.kind == tEq:
		op = OpEq
	case t.kind == tNe:
		op = OpNe
	case t.kind == tLt:
		op = OpLt
	case t.kind == tLe:
		op = OpLe
	case t.kind == tGt:
		op = OpGt
	case t.kind == tGe:
		op = OpGe
	case t.kind == tIdent && strings.EqualFold(t.text, "like"):
		op = OpLike
	default:
		// Bare path: existential test, as in "where X.Links".
		if l.Path != nil {
			return ExistsCond{P: *l.Path}, nil
		}
		return nil, fmt.Errorf("lorel: expected comparison operator, got %s", t)
	}
	p.i++
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if op == OpLike && (r.Lit == nil || r.Lit.Kind != LitString) {
		return nil, fmt.Errorf("lorel: LIKE requires a string pattern")
	}
	return CmpCond{Op: op, L: l, R: r}, nil
}

func (p *parser) parseOperand() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tString:
		p.i++
		return Operand{Lit: &Literal{Kind: LitString, S: t.text}}, nil
	case tInt:
		p.i++
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("lorel: bad integer %q", t.text)
		}
		return Operand{Lit: &Literal{Kind: LitInt, I: v}}, nil
	case tReal:
		p.i++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("lorel: bad real %q", t.text)
		}
		return Operand{Lit: &Literal{Kind: LitReal, F: v}}, nil
	case tIdent:
		switch strings.ToLower(t.text) {
		case "true":
			p.i++
			return Operand{Lit: &Literal{Kind: LitBool, B: true}}, nil
		case "false":
			p.i++
			return Operand{Lit: &Literal{Kind: LitBool, B: false}}, nil
		}
		path, err := p.parsePath()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Path: &path}, nil
	}
	return Operand{}, fmt.Errorf("lorel: expected operand, got %s", t)
}

func (p *parser) parsePath() (Path, error) {
	t := p.cur()
	if t.kind != tIdent || isKeyword(t) {
		return Path{}, fmt.Errorf("lorel: expected path, got %s", t)
	}
	p.i++
	path := Path{Base: t.text}
	for p.cur().kind == tDot {
		p.i++
		step, err := p.parseStep()
		if err != nil {
			return Path{}, err
		}
		path.Steps = append(path.Steps, step)
	}
	return path, nil
}

func (p *parser) parseStep() (Step, error) {
	t := p.cur()
	switch t.kind {
	case tIdent:
		if isKeyword(t) {
			return nil, fmt.Errorf("lorel: keyword %q cannot be a label", t.text)
		}
		p.i++
		return LabelStep{Name: t.text}, nil
	case tPercent:
		p.i++
		return WildcardStep{}, nil
	case tHash:
		p.i++
		return AnyPathStep{}, nil
	case tLParen:
		p.i++
		g := GroupStep{}
		for {
			var alt []Step
			for {
				s, err := p.parseStep()
				if err != nil {
					return nil, err
				}
				alt = append(alt, s)
				if p.cur().kind == tDot {
					p.i++
					continue
				}
				break
			}
			g.Alternatives = append(g.Alternatives, alt)
			if p.cur().kind == tPipe {
				p.i++
				continue
			}
			break
		}
		if p.cur().kind != tRParen {
			return nil, fmt.Errorf("lorel: expected ) in path group, got %s", p.cur())
		}
		p.i++
		switch p.cur().kind {
		case tQuest:
			g.Quant = QOptional
			p.i++
		case tStar:
			g.Quant = QStar
			p.i++
		case tPlus:
			g.Quant = QPlus
			p.i++
		}
		return g, nil
	}
	return nil, fmt.Errorf("lorel: expected path step, got %s", t)
}
