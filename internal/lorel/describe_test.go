package lorel

import (
	"strings"
	"testing"
)

func compilePlan(t *testing.T, src string) *Plan {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDescribeRendersPlanTree(t *testing.T) {
	p := compilePlan(t, `select G.Symbol from DB.Gene G where G.Organism = "Homo sapiens" and exists G.Links.GO`)
	d := p.Describe()
	want := []string{
		"plan: select G.Symbol",
		"from[0]: DB.Gene as G",
		"nfa:",
		"where:",
		"and",
		`G.Organism = "Homo sapiens"`,
		"exists G.Links.GO",
		"select[0]: G.Symbol as Symbol",
	}
	for _, w := range want {
		if !strings.Contains(d, w) {
			t.Errorf("Describe missing %q in:\n%s", w, d)
		}
	}
}

func TestDescribeNoWhere(t *testing.T) {
	p := compilePlan(t, `select G from DB.Gene G`)
	d := p.Describe()
	if !strings.Contains(d, "where: (none)") {
		t.Errorf("Describe should mark absent where clause:\n%s", d)
	}
}

// EvalCounted with counts must produce exactly the answer Eval produces —
// the counters are observation, not behaviour.
func TestEvalCountedMatchesEval(t *testing.T) {
	g := testGraph(t)
	queries := []string{
		`select G.Symbol from DB.Gene G`,
		`select X from DB.Gene X where X.Organism = "Homo sapiens"`,
		`select X from DB.Gene X where exists X.Links.GO and not (exists X.Links.OMIM)`,
		`select A.Symbol from DB.Gene A, DB.Gene B where A.Position = B.Position and A.LocusID < B.LocusID`,
	}
	for _, src := range queries {
		p := compilePlan(t, src)
		plain, err := p.Eval(g)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		var ec EvalCounts
		counted, err := p.EvalCounted(g, &ec)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if plain.Size() != counted.Size() || plain.Bindings != counted.Bindings {
			t.Errorf("%s: counted eval diverged: size %d vs %d, bindings %d vs %d",
				src, plain.Size(), counted.Size(), plain.Bindings, counted.Bindings)
		}
		if ec.Bindings != counted.Bindings {
			t.Errorf("%s: counter Bindings=%d, result Bindings=%d", src, ec.Bindings, counted.Bindings)
		}
		if ec.WhereEvals != ec.Bindings+ec.Pruned {
			t.Errorf("%s: WhereEvals=%d != Bindings+Pruned=%d", src, ec.WhereEvals, ec.Bindings+ec.Pruned)
		}
	}
}

func TestEvalCountsCardinalities(t *testing.T) {
	g := testGraph(t)
	p := compilePlan(t, `select X.Symbol from DB.Gene X where X.Organism = "Homo sapiens"`)
	var ec EvalCounts
	res, err := p.EvalCounted(g, &ec)
	if err != nil {
		t.Fatal(err)
	}
	// Three genes under the root; two are human.
	if ec.RootsMatched != 3 {
		t.Errorf("RootsMatched = %d, want 3", ec.RootsMatched)
	}
	if len(ec.FromMatched) != 1 || ec.FromMatched[0] != 3 {
		t.Errorf("FromMatched = %v, want [3]", ec.FromMatched)
	}
	if ec.WhereEvals != 3 || ec.Bindings != 2 || ec.Pruned != 1 {
		t.Errorf("where accounting = evals %d kept %d pruned %d, want 3/2/1",
			ec.WhereEvals, ec.Bindings, ec.Pruned)
	}
	if len(ec.SelectMatched) != 1 || ec.SelectMatched[0] != 2 {
		t.Errorf("SelectMatched = %v, want [2]", ec.SelectMatched)
	}
	if ec.ObjectsVisited == 0 {
		t.Error("ObjectsVisited should be nonzero")
	}
	if res.Bindings != 2 {
		t.Errorf("Bindings = %d, want 2", res.Bindings)
	}
}

// A nil *EvalCounts must be inert on every note method — the evaluator
// calls them unconditionally.
func TestEvalCountsNilInert(t *testing.T) {
	var ec *EvalCounts
	ec.noteFrom(0, 5, 10)
	ec.noteSelect(0, 2, 4)
	ec.noteWhere(true)
	ec.noteWhere(false)
	g := testGraph(t)
	p := compilePlan(t, `select G from DB.Gene G`)
	if _, err := p.EvalCounted(g, nil); err != nil {
		t.Fatal(err)
	}
}
