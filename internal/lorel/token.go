// Package lorel implements the Lorel query language over OEM graphs.
//
// Lorel (Abiteboul, Quass, McHugh, Widom, Wiener 1997) is ANNODA's query
// language: "a user-friendly language in the SQL and OQL style for
// effectively querying [semi-structured] data". This implementation covers
// the select-from-where core the paper uses:
//
//   - general path expressions with wildcards ('%' one label, '#' any
//     sequence), alternation '(a|b)', grouping and '?', '*', '+' repetition;
//   - existential comparison semantics with type coercion (compare.go in
//     the oem package);
//   - results coerced into new OEM "answer" objects with duplicate
//     elimination by oid.
//
// The update sub-language of Lorel is intentionally out of scope — the
// paper never uses it.
package lorel

import "fmt"

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tString
	tInt
	tReal
	tDot
	tComma
	tLParen
	tRParen
	tPercent // %
	tHash    // #
	tPipe    // |
	tQuest   // ?
	tStar    // *
	tPlus    // +
	tEq      // =
	tNe      // != or <>
	tLt
	tLe
	tGt
	tGe
)

var tokNames = map[tokKind]string{
	tEOF: "end of query", tIdent: "identifier", tString: "string",
	tInt: "integer", tReal: "real", tDot: ".", tComma: ",",
	tLParen: "(", tRParen: ")", tPercent: "%", tHash: "#", tPipe: "|",
	tQuest: "?", tStar: "*", tPlus: "+", tEq: "=", tNe: "!=",
	tLt: "<", tLe: "<=", tGt: ">", tGe: ">=",
}

type token struct {
	kind tokKind
	text string // raw identifier/string/number text
	pos  int
}

func (t token) String() string {
	if t.kind == tIdent || t.kind == tString || t.kind == tInt || t.kind == tReal {
		return fmt.Sprintf("%s %q", tokNames[t.kind], t.text)
	}
	return tokNames[t.kind]
}
