package lorel

import (
	"fmt"
	"sync"

	"repro/internal/oem"
)

// Plan is a compiled query: every path in the from, select and where
// clauses is precompiled to an NFA, literals are materialized once, and a
// pool of traversal scratch keeps repeated evaluations allocation-light.
// Compile once, Eval many — the mediator caches plans by canonical query
// string so a repeated query shape never recompiles.
//
// A Plan is safe for concurrent Eval calls. It aliases the Query it was
// compiled from; the caller must not mutate that Query afterwards.
type Plan struct {
	q       *Query
	from    []*nfa
	sel     []*nfa
	where   ccond // nil means true
	scratch sync.Pool
}

// Query returns the query the plan was compiled from (read-only).
func (p *Plan) Query() *Query { return p.q }

// Compile builds the execution plan for a query.
func Compile(q *Query) (*Plan, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("lorel: query has no from clause")
	}
	p := &Plan{q: q}
	for _, f := range q.From {
		p.from = append(p.from, compileSteps(f.Path.Steps))
	}
	for _, s := range q.Select {
		p.sel = append(p.sel, compileSteps(s.Path.Steps))
	}
	w, err := compileCond(q.Where)
	if err != nil {
		return nil, err
	}
	p.where = w
	return p, nil
}

// Eval runs the compiled plan against one OEM graph. Path bases resolve
// first against range variables bound by earlier from-clauses, then against
// the graph's named roots.
func (p *Plan) Eval(g *oem.Graph) (*Result, error) {
	return p.eval(g, nil)
}

// eval is the shared evaluation core. The count hooks are unconditional —
// EvalCounts methods are nil-inert, so the plain Eval path pays one
// predictable branch per hook (E20 measures the cost).
func (p *Plan) eval(g *oem.Graph, ec *EvalCounts) (*Result, error) {
	// A full query evaluation makes many label lookups over one settled
	// graph: build its label index once up front. (Condition plans skip
	// this — they run against still-growing per-source graphs.)
	g.EnsureLabelIndex()

	sc, _ := p.scratch.Get().(*scratch)
	if sc == nil {
		sc = newScratch()
	}
	defer p.scratch.Put(sc)
	ev := &evaluator{g: g, env: make(map[string]oem.OID, len(p.q.From)), sc: sc}

	res := &Result{Graph: oem.NewGraph(), Origin: make(map[oem.OID]oem.OID)}
	res.Answer = res.Graph.NewComplex()
	res.Graph.SetRoot("answer", res.Answer)

	imported := make(map[oem.OID]oem.OID) // source oid -> answer oid
	type edgeKey struct {
		label string
		src   oem.OID
	}
	added := make(map[edgeKey]bool)

	q := p.q
	var evalErr error
	var recur func(level int) bool
	recur = func(level int) bool {
		if level == len(q.From) {
			ok, err := evalC(ev, p.where)
			if err != nil {
				evalErr = err
				return false
			}
			ec.noteWhere(ok)
			if !ok {
				return true
			}
			res.Bindings++
			for i, item := range q.Select {
				starts, err := ev.starts(item.Path)
				if err != nil {
					evalErr = err
					return false
				}
				label := item.EdgeLabel()
				emitted := evalNFA(g, p.sel[i], starts, sc)
				ec.noteSelect(i, len(emitted), len(sc.queue))
				for _, src := range emitted {
					k := edgeKey{label: label, src: src}
					if added[k] {
						continue // duplicate elimination by oid
					}
					added[k] = true
					dst, ok := imported[src]
					if !ok {
						var err error
						dst, err = importShared(res.Graph, g, src, imported)
						if err != nil {
							evalErr = err
							return false
						}
						res.Origin[dst] = src
					}
					if err := res.Graph.AddRef(res.Answer, label, dst); err != nil {
						evalErr = err
						return false
					}
				}
			}
			return true
		}
		f := q.From[level]
		starts, err := ev.starts(f.Path)
		if err != nil {
			evalErr = err
			return false
		}
		name := f.BindName()
		matched := evalNFA(g, p.from[level], starts, sc)
		ec.noteFrom(level, len(matched), len(sc.queue))
		for _, oid := range matched {
			ev.env[name] = oid
			if !recur(level + 1) {
				return false
			}
		}
		delete(ev.env, name)
		return true
	}
	recur(0)
	if evalErr != nil {
		return nil, evalErr
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Compiled conditions
// ---------------------------------------------------------------------------

// evaluator carries one evaluation's graph, variable bindings, and scratch.
type evaluator struct {
	g   *oem.Graph
	env map[string]oem.OID
	sc  *scratch
}

// starts resolves a path's base to its start objects: a bound range
// variable first, then a graph root (matched under Unicode case folding,
// like labels). Unknown bases are errors — typos in queries should not
// silently yield empty answers. The returned slice aliases the evaluator's
// scratch; it is consumed before the next starts call.
func (ev *evaluator) starts(p Path) ([]oem.OID, error) {
	if oid, ok := ev.env[p.Base]; ok {
		ev.sc.startBuf[0] = oid
		return ev.sc.startBuf[:1], nil
	}
	if oid := ev.g.RootMatch(p.Base); oid != 0 {
		ev.sc.startBuf[0] = oid
		return ev.sc.startBuf[:1], nil
	}
	return nil, fmt.Errorf("lorel: unknown variable or root %q", p.Base)
}

// ccond is one node of a compiled where clause.
type ccond interface {
	eval(ev *evaluator) (bool, error)
}

// evalC evaluates a possibly-nil compiled condition (nil means true).
func evalC(ev *evaluator, c ccond) (bool, error) {
	if c == nil {
		return true, nil
	}
	return c.eval(ev)
}

func compileCond(c Cond) (ccond, error) {
	switch x := c.(type) {
	case nil:
		return nil, nil
	case AndCond:
		l, err := compileCond(x.L)
		if err != nil {
			return nil, err
		}
		r, err := compileCond(x.R)
		if err != nil {
			return nil, err
		}
		return cAnd{l: l, r: r}, nil
	case OrCond:
		l, err := compileCond(x.L)
		if err != nil {
			return nil, err
		}
		r, err := compileCond(x.R)
		if err != nil {
			return nil, err
		}
		return cOr{l: l, r: r}, nil
	case NotCond:
		e, err := compileCond(x.E)
		if err != nil {
			return nil, err
		}
		return cNot{e: e}, nil
	case ExistsCond:
		return cExists{p: x.P, n: compileSteps(x.P.Steps)}, nil
	case CmpCond:
		l, err := compileOperand(x.L)
		if err != nil {
			return nil, err
		}
		r, err := compileOperand(x.R)
		if err != nil {
			return nil, err
		}
		return cCmp{op: x.Op, l: l, r: r}, nil
	}
	return nil, fmt.Errorf("lorel: unknown condition %T", c)
}

type cAnd struct{ l, r ccond }

func (c cAnd) eval(ev *evaluator) (bool, error) {
	ok, err := evalC(ev, c.l)
	if err != nil || !ok {
		return false, err
	}
	return evalC(ev, c.r)
}

type cOr struct{ l, r ccond }

func (c cOr) eval(ev *evaluator) (bool, error) {
	ok, err := evalC(ev, c.l)
	if err != nil {
		return false, err
	}
	if ok {
		return true, nil
	}
	return evalC(ev, c.r)
}

type cNot struct{ e ccond }

func (c cNot) eval(ev *evaluator) (bool, error) {
	ok, err := evalC(ev, c.e)
	if err != nil {
		return false, err
	}
	return !ok, nil
}

type cExists struct {
	p Path
	n *nfa
}

func (c cExists) eval(ev *evaluator) (bool, error) {
	starts, err := ev.starts(c.p)
	if err != nil {
		return false, err
	}
	return len(evalNFA(ev.g, c.n, starts, ev.sc)) > 0, nil
}

// cOperand is a compiled comparison operand: a literal materialized once at
// compile time, or a precompiled path.
type cOperand struct {
	lits []*oem.Object // non-nil for literals: exactly one synthetic atom
	path *Path
	n    *nfa
}

func compileOperand(o Operand) (cOperand, error) {
	if o.Lit != nil {
		return cOperand{lits: []*oem.Object{litObject(o.Lit)}}, nil
	}
	if o.Path == nil {
		return cOperand{}, fmt.Errorf("lorel: operand has neither path nor literal")
	}
	return cOperand{path: o.Path, n: compileSteps(o.Path.Steps)}, nil
}

// values materializes an operand into atomic objects: precompiled literal
// atoms, or the atomic objects its path reaches (complex objects are
// skipped — they are incomparable in Lorel). Path results land in *buf,
// which is reused across bindings.
func (ev *evaluator) values(o cOperand, buf *[]*oem.Object) ([]*oem.Object, error) {
	if o.lits != nil {
		return o.lits, nil
	}
	starts, err := ev.starts(*o.path)
	if err != nil {
		return nil, err
	}
	out := (*buf)[:0]
	for _, oid := range evalNFA(ev.g, o.n, starts, ev.sc) {
		obj := ev.g.Get(oid)
		if obj != nil && obj.IsAtomic() {
			out = append(out, obj)
		}
	}
	*buf = out
	return out, nil
}

// cCmp applies existential comparison semantics: the predicate is true
// when SOME value pair drawn from the two operands satisfies the operator.
type cCmp struct {
	op   CmpOp
	l, r cOperand
}

func (c cCmp) eval(ev *evaluator) (bool, error) {
	ls, err := ev.values(c.l, &ev.sc.lvals)
	if err != nil {
		return false, err
	}
	rs, err := ev.values(c.r, &ev.sc.rvals)
	if err != nil {
		return false, err
	}
	for _, l := range ls {
		for _, r := range rs {
			if c.op == OpLike {
				if r.Kind == oem.KindString && oem.Like(l, r.Str) {
					return true, nil
				}
				continue
			}
			cmp, ok := oem.Compare(l, r)
			if !ok {
				continue
			}
			switch c.op {
			case OpEq:
				if cmp == 0 {
					return true, nil
				}
			case OpNe:
				if cmp != 0 {
					return true, nil
				}
			case OpLt:
				if cmp < 0 {
					return true, nil
				}
			case OpLe:
				if cmp <= 0 {
					return true, nil
				}
			case OpGt:
				if cmp > 0 {
					return true, nil
				}
			case OpGe:
				if cmp >= 0 {
					return true, nil
				}
			}
		}
	}
	return false, nil
}

// ---------------------------------------------------------------------------
// Compiled conditions, standalone (pushdown)
// ---------------------------------------------------------------------------

// CondPlan is a compiled condition. The mediator compiles each pushed-down
// predicate once per source and evaluates it per entity, so pushdown does
// not recompile (or re-allocate traversal state) per row.
type CondPlan struct {
	c       ccond
	scratch sync.Pool
}

// CompileCond compiles one condition for repeated evaluation. A nil
// condition compiles to the always-true plan.
func CompileCond(c Cond) (*CondPlan, error) {
	cc, err := compileCond(c)
	if err != nil {
		return nil, err
	}
	return &CondPlan{c: cc}, nil
}

// Eval evaluates the compiled condition under an explicit variable binding.
// Safe for concurrent use.
func (cp *CondPlan) Eval(g *oem.Graph, env map[string]oem.OID) (bool, error) {
	if cp.c == nil {
		return true, nil
	}
	sc, _ := cp.scratch.Get().(*scratch)
	if sc == nil {
		sc = newScratch()
	}
	defer cp.scratch.Put(sc)
	return cp.c.eval(&evaluator{g: g, env: env, sc: sc})
}
