package lorel

import (
	"fmt"
	"strings"
	"unicode"
)

// lex tokenizes a Lorel query. Identifiers may contain '-' when both
// neighbours are letters/digits, so the paper's "ANNODA-GML" scans as one
// identifier (our subset has no arithmetic, so no ambiguity arises).
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	runes := []rune(src)
	n := len(runes)
	for i < n {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '-' && i+1 < n && runes[i+1] == '-':
			for i < n && runes[i] != '\n' {
				i++
			}
		case r == '"' || r == '\'':
			quote := r
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < n {
				if runes[j] == '\\' && j+1 < n {
					switch runes[j+1] {
					case 'n':
						sb.WriteRune('\n')
					case 't':
						sb.WriteRune('\t')
					case '\\', '"', '\'':
						sb.WriteRune(runes[j+1])
					default:
						sb.WriteRune(runes[j+1])
					}
					j += 2
					continue
				}
				if runes[j] == quote {
					closed = true
					break
				}
				sb.WriteRune(runes[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("lorel: unterminated string at offset %d", i)
			}
			toks = append(toks, token{kind: tString, text: sb.String(), pos: i})
			i = j + 1
		case unicode.IsDigit(r) || (r == '-' && i+1 < n && unicode.IsDigit(runes[i+1])):
			j := i
			if runes[j] == '-' {
				j++
			}
			isReal := false
			for j < n && (unicode.IsDigit(runes[j]) || runes[j] == '.') {
				if runes[j] == '.' {
					// A dot not followed by a digit terminates the number
					// (it is a path dot).
					if j+1 >= n || !unicode.IsDigit(runes[j+1]) {
						break
					}
					isReal = true
				}
				j++
			}
			kind := tInt
			if isReal {
				kind = tReal
			}
			toks = append(toks, token{kind: kind, text: string(runes[i:j]), pos: i})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < n {
				rj := runes[j]
				if unicode.IsLetter(rj) || unicode.IsDigit(rj) || rj == '_' {
					j++
					continue
				}
				// '-' inside an identifier: both neighbours alphanumeric.
				if rj == '-' && j+1 < n && (unicode.IsLetter(runes[j+1]) || unicode.IsDigit(runes[j+1])) {
					j++
					continue
				}
				break
			}
			toks = append(toks, token{kind: tIdent, text: string(runes[i:j]), pos: i})
			i = j
		default:
			two := ""
			if i+1 < n {
				two = string(runes[i : i+2])
			}
			switch two {
			case "!=", "<>":
				toks = append(toks, token{kind: tNe, pos: i})
				i += 2
				continue
			case "<=":
				toks = append(toks, token{kind: tLe, pos: i})
				i += 2
				continue
			case ">=":
				toks = append(toks, token{kind: tGe, pos: i})
				i += 2
				continue
			}
			var kind tokKind
			switch r {
			case '.':
				kind = tDot
			case ',':
				kind = tComma
			case '(':
				kind = tLParen
			case ')':
				kind = tRParen
			case '%':
				kind = tPercent
			case '#':
				kind = tHash
			case '|':
				kind = tPipe
			case '?':
				kind = tQuest
			case '*':
				kind = tStar
			case '+':
				kind = tPlus
			case '=':
				kind = tEq
			case '<':
				kind = tLt
			case '>':
				kind = tGt
			default:
				return nil, fmt.Errorf("lorel: unexpected character %q at offset %d", r, i)
			}
			toks = append(toks, token{kind: kind, pos: i})
			i++
		}
	}
	toks = append(toks, token{kind: tEOF, pos: n})
	return toks, nil
}
