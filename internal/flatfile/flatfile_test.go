package flatfile

import (
	"strings"
	"testing"
)

const oboSample = `format-version: 1.2
date: 2004-11-30

[Term]
id: GO:0003700
name: transcription factor activity
namespace: molecular_function
is_a: GO:0003677

[Term]
id: GO:0005515
name: protein binding
namespace: molecular_function
! a comment line
is_a: GO:0005488
is_a: GO:0003674
`

const emblSample = `ID: 164772
TI: FOSB PROTO-ONCOGENE
GS: FOSB
CD: 19q13.32
//
ID: 191170
TI: TUMOR PROTEIN P53
GS: TP53
GS: P53
CD: 17p13.1
//
`

func TestParseOBO(t *testing.T) {
	lib, err := Parse(strings.NewReader(oboSample), OBO)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() != 2 {
		t.Fatalf("Len = %d", lib.Len())
	}
	r := lib.Get(0)
	if r.First("id") != "GO:0003700" {
		t.Errorf("id = %q", r.First("id"))
	}
	if r.First("name") != "transcription factor activity" {
		t.Errorf("name = %q", r.First("name"))
	}
	r2 := lib.Get(1)
	if got := r2.All("is_a"); len(got) != 2 || got[0] != "GO:0005488" {
		t.Errorf("is_a = %v", got)
	}
	// Header lines before the first stanza must be ignored.
	if r.Has("format-version") {
		t.Error("header leaked into record")
	}
	// Comment lines are skipped.
	if r2.Has("!") {
		t.Error("comment leaked")
	}
}

func TestParseEMBL(t *testing.T) {
	lib, err := Parse(strings.NewReader(emblSample), EMBL)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() != 2 {
		t.Fatalf("Len = %d", lib.Len())
	}
	if lib.Get(1).First("TI") != "TUMOR PROTEIN P53" {
		t.Errorf("TI = %q", lib.Get(1).First("TI"))
	}
	if got := lib.Get(1).All("GS"); len(got) != 2 {
		t.Errorf("GS = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("noseparator\n//\n"), EMBL); err == nil {
		t.Error("expected separator error")
	}
}

func TestFirstAllHasCaseInsensitive(t *testing.T) {
	r := &Record{}
	r.Add("GS", "TP53")
	if r.First("gs") != "TP53" || !r.Has("Gs") || len(r.All("gS")) != 1 {
		t.Error("tag matching should be case-insensitive")
	}
	if r.First("zz") != "" || r.Has("zz") || r.All("zz") != nil {
		t.Error("missing tag handling wrong")
	}
}

func TestFindWithAndWithoutIndex(t *testing.T) {
	lib, err := Parse(strings.NewReader(emblSample), EMBL)
	if err != nil {
		t.Fatal(err)
	}
	// Unindexed scan path.
	got := lib.Find("GS", "p53")
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("scan Find = %v", got)
	}
	// Indexed path must agree.
	lib.BuildIndex("GS")
	if !lib.HasIndex("gs") {
		t.Error("index missing")
	}
	got2 := lib.Find("GS", "P53")
	if len(got2) != 1 || got2[0] != 1 {
		t.Fatalf("indexed Find = %v", got2)
	}
	// Adding a record keeps the index current.
	nr := &Record{}
	nr.Add("ID", "600185")
	nr.Add("GS", "P53")
	lib.Add(nr)
	got3 := lib.Find("GS", "p53")
	if len(got3) != 2 {
		t.Fatalf("after Add, Find = %v", got3)
	}
}

func TestSearchSubstring(t *testing.T) {
	lib, err := Parse(strings.NewReader(emblSample), EMBL)
	if err != nil {
		t.Fatal(err)
	}
	got := lib.Search("TI", "protein")
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Search = %v", got)
	}
	if got := lib.Search("TI", "zzz"); len(got) != 0 {
		t.Errorf("Search miss = %v", got)
	}
}

func TestTagsAndTagNames(t *testing.T) {
	lib, err := Parse(strings.NewReader(emblSample), EMBL)
	if err != nil {
		t.Fatal(err)
	}
	tags := lib.Tags()
	if tags["GS"] != 3 || tags["ID"] != 2 {
		t.Errorf("Tags = %v", tags)
	}
	names := lib.TagNames()
	if len(names) != 4 || names[0] != "CD" {
		t.Errorf("TagNames = %v", names)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name    string
		src     string
		dialect Dialect
	}{
		{"obo", oboSample, OBO},
		{"embl", emblSample, EMBL},
	} {
		lib, err := Parse(strings.NewReader(tc.src), tc.dialect)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var sb strings.Builder
		if err := lib.Write(&sb); err != nil {
			t.Fatalf("%s: write: %v", tc.name, err)
		}
		lib2, err := Parse(strings.NewReader(sb.String()), tc.dialect)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", tc.name, err, sb.String())
		}
		if lib2.Len() != lib.Len() {
			t.Fatalf("%s: %d != %d records", tc.name, lib2.Len(), lib.Len())
		}
		for i := 0; i < lib.Len(); i++ {
			a, b := lib.Get(i), lib2.Get(i)
			if len(a.Fields) != len(b.Fields) {
				t.Fatalf("%s: record %d field counts differ", tc.name, i)
			}
			for j := range a.Fields {
				if a.Fields[j] != b.Fields[j] {
					t.Errorf("%s: record %d field %d: %v != %v", tc.name, i, j, a.Fields[j], b.Fields[j])
				}
			}
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	lib, _ := Parse(strings.NewReader(emblSample), EMBL)
	n := 0
	lib.Scan(func(int, *Record) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("scan visited %d", n)
	}
}

func TestGetOutOfRange(t *testing.T) {
	lib := NewLibrary(EMBL)
	if lib.Get(-1) != nil || lib.Get(0) != nil {
		t.Error("out-of-range Get should be nil")
	}
}

func TestValueWithSeparator(t *testing.T) {
	// URLs contain ':'; only the first separator splits.
	src := "ID: 1\nURL: http://x.test/path\n//\n"
	lib, err := Parse(strings.NewReader(src), EMBL)
	if err != nil {
		t.Fatal(err)
	}
	if got := lib.Get(0).First("URL"); got != "http://x.test/path" {
		t.Errorf("URL = %q", got)
	}
}
