// Package flatfile implements an SRS-style indexed flat-file record library.
//
// SRS (Etzold & Argos 1993) — one of the hypertext-navigation systems the
// ANNODA paper surveys — is "an indexing and retrieval tool for flat file
// data libraries": biological databanks distributed as text files made of
// tagged-field records. ANNODA's GO and OMIM sources store their data in
// exactly such files; their wrappers parse them through this package.
//
// A Library holds ordered Records; each Record is an ordered multiset of
// (Tag, Value) fields. Dialects configure how records are delimited:
// OBO-style stanzas ("[Term]" headers) and EMBL/OMIM-style terminated
// records ("//" lines) are both supported. Tag indexes provide exact and
// substring retrieval, the operations SRS exposes.
package flatfile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Field is one tagged line of a record.
type Field struct {
	Tag   string
	Value string
}

// Record is an ordered list of fields. Tags may repeat (e.g. multiple
// "is_a" parents in an OBO term).
type Record struct {
	Fields []Field
}

// First returns the value of the first field with the given tag, or "".
func (r *Record) First(tag string) string {
	for _, f := range r.Fields {
		if strings.EqualFold(f.Tag, tag) {
			return f.Value
		}
	}
	return ""
}

// All returns the values of every field with the given tag, in order.
func (r *Record) All(tag string) []string {
	var out []string
	for _, f := range r.Fields {
		if strings.EqualFold(f.Tag, tag) {
			out = append(out, f.Value)
		}
	}
	return out
}

// Has reports whether the record has at least one field with the tag.
func (r *Record) Has(tag string) bool {
	for _, f := range r.Fields {
		if strings.EqualFold(f.Tag, tag) {
			return true
		}
	}
	return false
}

// Add appends a field.
func (r *Record) Add(tag, value string) {
	r.Fields = append(r.Fields, Field{Tag: tag, Value: value})
}

// Tags returns the distinct tags in first-seen order.
func (r *Record) Tags() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range r.Fields {
		lt := strings.ToLower(f.Tag)
		if !seen[lt] {
			seen[lt] = true
			out = append(out, f.Tag)
		}
	}
	return out
}

// Dialect configures record delimiting and the tag separator.
type Dialect struct {
	// Name identifies the dialect in errors.
	Name string
	// StanzaStart, when non-empty, begins a new record at any line equal to
	// it (OBO's "[Term]"). Lines before the first stanza are ignored
	// (headers).
	StanzaStart string
	// Terminator, when non-empty, ends the current record at any line equal
	// to it (EMBL/OMIM's "//").
	Terminator string
	// Sep separates tag from value; defaults to ":".
	Sep string
}

// OBO is the Gene-Ontology-style stanza dialect.
var OBO = Dialect{Name: "obo", StanzaStart: "[Term]", Sep: ":"}

// EMBL is the terminator-delimited dialect used by the OMIM-style records.
var EMBL = Dialect{Name: "embl", Terminator: "//", Sep: ":"}

func (d Dialect) sep() string {
	if d.Sep == "" {
		return ":"
	}
	return d.Sep
}

// Library is an in-memory flat-file databank with optional tag indexes.
// It is safe for concurrent readers; Add and BuildIndex take a write lock.
type Library struct {
	mu      sync.RWMutex
	dialect Dialect
	records []*Record
	// exact index: tag(lower) -> value(lower) -> sorted record positions
	exact map[string]map[string][]int
}

// NewLibrary returns an empty library using the given dialect for I/O.
func NewLibrary(d Dialect) *Library {
	return &Library{dialect: d, exact: make(map[string]map[string][]int)}
}

// Parse reads a whole flat file into a new library.
func Parse(r io.Reader, d Dialect) (*Library, error) {
	lib := NewLibrary(d)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var cur *Record
	inBody := d.StanzaStart == "" // terminator dialects start in-body
	lineNo := 0
	flush := func() {
		if cur != nil && len(cur.Fields) > 0 {
			lib.add(cur)
		}
		cur = nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t\r")
		if line == "" {
			continue
		}
		if d.StanzaStart != "" && line == d.StanzaStart {
			flush()
			cur = &Record{}
			inBody = true
			continue
		}
		if d.Terminator != "" && line == d.Terminator {
			flush()
			continue
		}
		if !inBody {
			continue // header material before the first stanza
		}
		if strings.HasPrefix(line, "!") || strings.HasPrefix(line, "#") {
			continue // comments
		}
		idx := strings.Index(line, d.sep())
		if idx <= 0 {
			return nil, fmt.Errorf("flatfile(%s): line %d: no %q separator in %q", d.Name, lineNo, d.sep(), line)
		}
		if cur == nil {
			cur = &Record{}
		}
		tag := strings.TrimSpace(line[:idx])
		val := strings.TrimSpace(line[idx+len(d.sep()):])
		cur.Add(tag, val)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return lib, nil
}

func (l *Library) add(r *Record) {
	pos := len(l.records)
	l.records = append(l.records, r)
	for tag, byVal := range l.exact {
		for _, v := range r.All(tag) {
			lv := strings.ToLower(v)
			byVal[lv] = append(byVal[lv], pos)
		}
	}
}

// Add appends a record to the library, maintaining any indexes.
func (l *Library) Add(r *Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.add(r)
}

// Len returns the number of records.
func (l *Library) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.records)
}

// Get returns the record at position i, or nil if out of range.
func (l *Library) Get(i int) *Record {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if i < 0 || i >= len(l.records) {
		return nil
	}
	return l.records[i]
}

// BuildIndex creates (or rebuilds) an exact-match index on a tag.
func (l *Library) BuildIndex(tag string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lt := strings.ToLower(tag)
	byVal := make(map[string][]int)
	for pos, r := range l.records {
		for _, v := range r.All(tag) {
			lv := strings.ToLower(v)
			byVal[lv] = append(byVal[lv], pos)
		}
	}
	l.exact[lt] = byVal
}

// HasIndex reports whether an exact index exists for the tag.
func (l *Library) HasIndex(tag string) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	_, ok := l.exact[strings.ToLower(tag)]
	return ok
}

// Find returns the positions of records having a field tag whose value
// equals value (case-insensitive). It uses the exact index when present and
// scans otherwise.
func (l *Library) Find(tag, value string) []int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	lt, lv := strings.ToLower(tag), strings.ToLower(value)
	if byVal, ok := l.exact[lt]; ok {
		return append([]int(nil), byVal[lv]...)
	}
	var out []int
	for pos, r := range l.records {
		for _, v := range r.All(tag) {
			if strings.ToLower(v) == lv {
				out = append(out, pos)
				break
			}
		}
	}
	return out
}

// Search returns the positions of records having a field tag whose value
// contains substr (case-insensitive). Always a scan; SRS's "browse" mode.
func (l *Library) Search(tag, substr string) []int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	ls := strings.ToLower(substr)
	var out []int
	for pos, r := range l.records {
		for _, v := range r.All(tag) {
			if strings.Contains(strings.ToLower(v), ls) {
				out = append(out, pos)
				break
			}
		}
	}
	return out
}

// Scan visits every record in order; return false to stop.
func (l *Library) Scan(visit func(int, *Record) bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for i, r := range l.records {
		if !visit(i, r) {
			return
		}
	}
}

// Tags returns every tag appearing in the library with its occurrence
// count, sorted by tag. Wrappers use this to describe a source's structure.
func (l *Library) Tags() map[string]int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[string]int)
	for _, r := range l.records {
		for _, f := range r.Fields {
			out[f.Tag]++
		}
	}
	return out
}

// TagNames returns the sorted distinct tag names.
func (l *Library) TagNames() []string {
	m := l.Tags()
	out := make([]string, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Write serializes the library back to its dialect's flat-file form.
func (l *Library) Write(w io.Writer) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	bw := bufio.NewWriter(w)
	d := l.dialect
	for _, r := range l.records {
		if d.StanzaStart != "" {
			if _, err := fmt.Fprintln(bw, d.StanzaStart); err != nil {
				return err
			}
		}
		for _, f := range r.Fields {
			if _, err := fmt.Fprintf(bw, "%s%s %s\n", f.Tag, d.sep(), f.Value); err != nil {
				return err
			}
		}
		if d.Terminator != "" {
			if _, err := fmt.Fprintln(bw, d.Terminator); err != nil {
				return err
			}
		}
		if d.StanzaStart != "" && d.Terminator == "" {
			if _, err := fmt.Fprintln(bw); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
