// Benchmarks, one (or more) per paper artifact, mirroring the experiments
// that cmd/annoda-bench prints. The package doubles as the integration test
// surface at module root. See EXPERIMENTS.md for the mapping to the paper's
// tables and figures.
package main_test

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/capability"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fedsql"
	"repro/internal/feed"
	"repro/internal/gml"
	"repro/internal/lorel"
	"repro/internal/match"
	"repro/internal/mediator"
	"repro/internal/navigate"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/snapstore"
	"repro/internal/sources/locuslink"
	"repro/internal/warehouse"
	"repro/internal/wrapper"
)

func benchCorpus(genes int) *datagen.Corpus {
	cfg := datagen.DefaultConfig()
	cfg.Genes = genes
	return datagen.Generate(cfg)
}

func benchSystem(b *testing.B, genes int) *core.System {
	b.Helper()
	sys, err := core.New(benchCorpus(genes), mediator.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// --- E1: Figure 2/3 — OML export of LocusLink -----------------------------

func BenchmarkE1_OMLExport(b *testing.B) {
	sys := benchSystem(b, 500)
	w := sys.Registry.Get("LocusLink")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Refresh()
		if _, err := w.Model(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_Figure3Text(b *testing.B) {
	sys := benchSystem(b, 100)
	w := sys.Registry.Get("LocusLink")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wrapper.FragmentText(w, i%100); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: Figure 4 — GML construction ---------------------------------------

func BenchmarkE2_GMLBuild(b *testing.B) {
	sys := benchSystem(b, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gml.Build(sys.Registry, match.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_GMLMaterialize(b *testing.B) {
	sys := benchSystem(b, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Global.Materialize(sys.Registry); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: §4.1 — the paper's Lorel query ------------------------------------

func BenchmarkE3_LorelSelect(b *testing.B) {
	sys := benchSystem(b, 300)
	g, err := sys.Global.Materialize(sys.Registry)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := runLorel(g, `select X from ANNODA-GML.Source X where X.Name = "LocusLink"`)
		if err != nil {
			b.Fatal(err)
		}
		if res != 1 {
			b.Fatalf("%d answers", res)
		}
	}
}

// --- E4: Figure 5(a) — question compilation --------------------------------

func BenchmarkE4_QuestionCompile(b *testing.B) {
	sys := benchSystem(b, 100)
	q := core.Figure5bQuestion()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ToLorel(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: Figure 5(b) — the integrated view, at three scales ----------------

func benchmarkE5(b *testing.B, genes int) {
	sys := benchSystem(b, genes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _, err := sys.Ask(core.Figure5bQuestion())
		if err != nil {
			b.Fatal(err)
		}
		if len(v.Rows) == 0 {
			b.Fatal("empty view")
		}
	}
}

func BenchmarkE5_IntegratedView100(b *testing.B)  { benchmarkE5(b, 100) }
func BenchmarkE5_IntegratedView1000(b *testing.B) { benchmarkE5(b, 1000) }
func BenchmarkE5_IntegratedView5000(b *testing.B) { benchmarkE5(b, 5000) }

// --- E6: Figure 5(c) — object view and link chase ---------------------------

func BenchmarkE6_ObjectView(b *testing.B) {
	sys := benchSystem(b, 300)
	urls := make([]string, 0, 300)
	for i := range sys.Corpus.Genes {
		urls = append(urls, locuslink.SelfURL(sys.Corpus.Genes[i].LocusID))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ObjectView(urls[i%len(urls)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_LinkChase(b *testing.B) {
	sys := benchSystem(b, 300)
	var start string
	for i := range sys.Corpus.Genes {
		if len(sys.Corpus.Genes[i].GoTerms) > 0 {
			start = locuslink.SelfURL(sys.Corpus.Genes[i].LocusID)
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := navigate.NewSession(sys.Resolver)
		if _, err := s.Open(start); err != nil {
			b.Fatal(err)
		}
		if _, err := s.FollowAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: Table 1 — per-system latency on the same question -----------------

func BenchmarkE7_ANNODA(b *testing.B) {
	sys := benchSystem(b, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.Ask(core.Figure5bQuestion()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7_GUSWarehouse(b *testing.B) {
	sys := benchSystem(b, 300)
	gus := warehouse.New(sys.Registry, sys.Global)
	if err := gus.Refresh(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gus.Figure5b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7_DiscoveryLink(b *testing.B) {
	sys := benchSystem(b, 300)
	dl := fedsql.New(sys.Registry)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dl.Figure5b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7_Hypertext(b *testing.B) {
	sys := benchSystem(b, 300)
	h := &navigate.Hypertext{LL: sys.LocusLink, GO: sys.GO, OM: sys.OMIM}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if syms, _ := h.AnswerFigure5b(); len(syms) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkE7_TableGeneration(b *testing.B) {
	c := benchCorpus(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := core.New(c, mediator.Options{})
		if err != nil {
			b.Fatal(err)
		}
		gus := warehouse.New(sys.Registry, sys.Global)
		if err := gus.Refresh(); err != nil {
			b.Fatal(err)
		}
		rows, err := capability.BuildTable(&capability.Fixture{
			ANNODA: sys, Kleisli: &capability.WrappedMultidb{System: sys},
			DL: fedsql.New(sys.Registry), GUS: gus,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 15 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// --- E8: optimizer ablation --------------------------------------------------

func benchmarkE8(b *testing.B, opts mediator.Options) {
	sys := benchSystem(b, 1000)
	m := mediator.New(sys.Registry, sys.Global, opts)
	query := `select G from ANNODA-GML.Gene G where G.Symbol like "A%" and exists G.Annotation and not exists G.Disease`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.QueryString(query); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_AllOptimizations(b *testing.B) { benchmarkE8(b, mediator.Options{}) }
func BenchmarkE8_NoPushdown(b *testing.B)       { benchmarkE8(b, mediator.Options{DisablePushdown: true}) }
func BenchmarkE8_NoPruning(b *testing.B)        { benchmarkE8(b, mediator.Options{DisablePruning: true}) }
func BenchmarkE8_Sequential(b *testing.B)       { benchmarkE8(b, mediator.Options{Sequential: true}) }
func BenchmarkE8_NoOptimizations(b *testing.B) {
	benchmarkE8(b, mediator.Options{DisablePushdown: true, DisablePruning: true, Sequential: true})
}

// --- E9: matching algorithms ---------------------------------------------------

func benchmarkE9(b *testing.B, fn func(a, bb wrapper.Schema, o match.Options) match.Result) {
	sys := benchSystem(b, 200)
	schemas, err := sys.Registry.Schemas()
	if err != nil {
		b.Fatal(err)
	}
	concepts := gml.DomainConcepts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range schemas {
			for _, c := range concepts {
				fn(s, c.Schema(), match.Options{})
			}
		}
	}
}

func BenchmarkE9_Hungarian(b *testing.B) { benchmarkE9(b, match.Match) }
func BenchmarkE9_Greedy(b *testing.B)    { benchmarkE9(b, match.MatchGreedy) }
func BenchmarkE9_Stable(b *testing.B)    { benchmarkE9(b, match.MatchStable) }

// --- E10: architecture comparison covered by E7 benches; staleness here ------

func BenchmarkE10_WarehouseRefresh(b *testing.B) {
	sys := benchSystem(b, 500)
	gus := warehouse.New(sys.Registry, sys.Global)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := gus.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: plugging in a source -------------------------------------------------

func BenchmarkE11_PlugSource(b *testing.B) {
	c := benchCorpus(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := core.New(c, mediator.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.PlugInProteins(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E12: large-scale batch annotation -------------------------------------------

func benchmarkE12(b *testing.B, workers int) {
	sys := benchSystem(b, 1000)
	var symbols []string
	for i := range sys.Corpus.Genes {
		symbols = append(symbols, sys.Corpus.Genes[i].Symbol)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := sys.AnnotateBatch(symbols, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(symbols) {
			b.Fatal("short batch")
		}
	}
}

func BenchmarkE12_Batch1Worker(b *testing.B)  { benchmarkE12(b, 1) }
func BenchmarkE12_Batch8Workers(b *testing.B) { benchmarkE12(b, 8) }

// --- E13: result cache — repeated and concurrent questions -------------------

// benchmarkE13Repeat measures the hot path the server actually serves: the
// same biological question asked back-to-back. With the cache the fan-out
// runs once; without it every iteration pays fetch+fuse+eval.
func benchmarkE13Repeat(b *testing.B, opts mediator.Options) {
	sys, err := core.New(benchCorpus(1000), opts)
	if err != nil {
		b.Fatal(err)
	}
	q := core.Figure5bQuestion()
	if _, _, err := sys.Ask(q); err != nil { // warm (or prove) the path
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _, err := sys.Ask(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(v.Rows) == 0 {
			b.Fatal("empty view")
		}
	}
}

func BenchmarkE13_RepeatedAskCached(b *testing.B) { benchmarkE13Repeat(b, mediator.Options{}) }
func BenchmarkE13_RepeatedAskUncached(b *testing.B) {
	benchmarkE13Repeat(b, mediator.Options{DisableCache: true})
}

// benchmarkE13Concurrent hammers one System from GOMAXPROCS goroutines with
// identical questions: singleflight collapses the herd onto one compute.
func benchmarkE13Concurrent(b *testing.B, opts mediator.Options) {
	sys, err := core.New(benchCorpus(1000), opts)
	if err != nil {
		b.Fatal(err)
	}
	q := core.Figure5bQuestion()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := sys.Ask(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE13_ConcurrentAskCached(b *testing.B) { benchmarkE13Concurrent(b, mediator.Options{}) }
func BenchmarkE13_ConcurrentAskUncached(b *testing.B) {
	benchmarkE13Concurrent(b, mediator.Options{DisableCache: true})
}

// BenchmarkE13_DistinctQuestionsCached cycles through several distinct
// questions so the benchmark exercises shard spread and LRU residency, not
// just one hot key.
func BenchmarkE13_DistinctQuestionsCached(b *testing.B) {
	sys, err := core.New(benchCorpus(1000), mediator.Options{})
	if err != nil {
		b.Fatal(err)
	}
	questions := []core.Question{
		{Include: []string{"GO"}, Exclude: []string{"OMIM"}},
		{Include: []string{"OMIM"}},
		{Include: []string{"GO", "OMIM"}, Combine: core.CombineAny},
		{Include: []string{"GO"}, Conditions: []core.Condition{{Field: "Symbol", Op: "like", Value: "A%"}}},
		{Exclude: []string{"GO"}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.Ask(questions[i%len(questions)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E14: compiled query plans + fused-snapshot eval-only fast path ---------

// e14Query is a repeated-shape query over the fused graph: the paper's
// Figure 5(b) question in raw Lorel.
const e14Query = `select G from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease`

func e14Fused(b *testing.B, genes int) (*core.System, *oem.Graph) {
	b.Helper()
	sys := benchSystem(b, genes)
	g, _, err := sys.Manager.FusedGraph()
	if err != nil {
		b.Fatal(err)
	}
	return sys, g
}

// BenchmarkE14_RepeatShapeCompiled: compile once, evaluate many — the plan
// cache's steady state for a repeated query shape.
func BenchmarkE14_RepeatShapeCompiled(b *testing.B) {
	_, g := e14Fused(b, 1000)
	plan, err := lorel.Compile(lorel.MustParse(e14Query))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Eval(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14_RepeatShapeInterpreted: the compile-then-run shim — what
// every evaluation paid before plans existed.
func BenchmarkE14_RepeatShapeInterpreted(b *testing.B) {
	_, g := e14Fused(b, 1000)
	q := lorel.MustParse(e14Query)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lorel.Eval(g, q); err != nil {
			b.Fatal(err)
		}
	}
}

// Selective variant: one-gene answer, so traversal and compilation dominate
// over answer construction.
func benchmarkE14Selective(b *testing.B, compiled bool) {
	sys, g := e14Fused(b, 1000)
	src := `select G.Symbol from ANNODA-GML.Gene G where G.Symbol = "` + sys.Corpus.Genes[0].Symbol + `"`
	q := lorel.MustParse(src)
	plan, err := lorel.Compile(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if compiled {
			_, err = plan.Eval(g)
		} else {
			_, err = lorel.Eval(g, q)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE14_SelectiveCompiled(b *testing.B)    { benchmarkE14Selective(b, true) }
func BenchmarkE14_SelectiveInterpreted(b *testing.B) { benchmarkE14Selective(b, false) }

// e14Distinct generates the i-th of 1024 distinct snapshot-safe questions:
// the base query plus a bit-selected set of structural conjuncts. None of
// the conjuncts is pushdown-eligible (complex or multi-step paths), so every
// question qualifies for the eval-only snapshot path.
func e14Distinct(i int) string {
	opts := [...]string{
		" and exists G.Annotation",
		" and exists G.Annotation.GoID",
		" and exists G.Annotation.Evidence",
		" and exists G.Annotation.Term",
		" and exists G.Annotation.Organism",
		" and exists G.Links",
		" and exists G.Links.GO",
		" and exists G.Links.OMIM",
		" and not exists G.Disease",
		" and not exists G.Disease.MimNumber",
	}
	var sb strings.Builder
	sb.WriteString(e14Query)
	for bit := 0; bit < len(opts); bit++ {
		if i&(1<<bit) != 0 {
			sb.WriteString(opts[bit])
		}
	}
	return sb.String()
}

// BenchmarkE14_DistinctQuestionsSnapshot: every iteration asks a question
// the result cache has never seen, over an unchanged source set — the
// snapshot fast path answers eval-only, sharing one fused graph.
func BenchmarkE14_DistinctQuestionsSnapshot(b *testing.B) {
	sys, err := core.New(benchCorpus(1000), mediator.Options{CacheSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := sys.Query(e14Distinct(i % 1024))
		if err != nil {
			b.Fatal(err)
		}
		if i < 1024 && !stats.SnapshotUsed {
			b.Fatal("distinct question missed the snapshot fast path")
		}
	}
}

// BenchmarkE14_DistinctQuestionsFullPipeline: the same distinct questions
// with the cache (and with it the snapshot path) disabled — every question
// pays fetch+fuse+eval, which is what every question cost before.
func BenchmarkE14_DistinctQuestionsFullPipeline(b *testing.B) {
	sys, err := core.New(benchCorpus(1000), mediator.Options{DisableCache: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.Query(e14Distinct(i % 1024)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E15: incremental change feeds — refresh 1% of a source, then query -----

// e15Query is snapshot-safe (touches all three concepts, nothing pushed
// down) and selective in its select list, so the measured cycle is
// dominated by refresh absorption, not by answer materialization.
const e15Query = `select G.Symbol from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease`

// benchmarkE15 measures the cost of absorbing a small source update: each
// iteration edits 1% of LocusLink's records and then asks a snapshot-safe
// question. The delta path routes the refresh through RefreshSource — a
// structural diff, an in-place patch of the shared fused snapshot, and
// concept-scoped cache invalidation. The full path is the pre-delta
// behaviour: wrapper Refresh, whole-cache nuke, and a complete fetch+fuse
// rebuild on the next query.
func benchmarkE15(b *testing.B, genes int, deltaPath bool) {
	sys, err := core.New(benchCorpus(genes), mediator.Options{CacheSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	loci := make([]int, 0, genes/100)
	for i := range sys.Corpus.Genes {
		if len(loci) == genes/100 {
			break
		}
		loci = append(loci, sys.Corpus.Genes[i].LocusID)
	}
	if _, stats, err := sys.Query(e15Query); err != nil {
		b.Fatal(err)
	} else if !stats.SnapshotUsed {
		b.Fatal("warm query missed the snapshot path")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rev := fmt.Sprintf("revision %d", i)
		for _, id := range loci {
			if err := sys.LocusLink.Update(id, func(l *locuslink.Locus) { l.Description = rev }); err != nil {
				b.Fatal(err)
			}
		}
		if deltaPath {
			rr, err := sys.Manager.RefreshSource("LocusLink")
			if err != nil {
				b.Fatal(err)
			}
			if rr.FullRebuild || !rr.Patched {
				b.Fatalf("delta path not taken: %+v", rr)
			}
		} else {
			sys.Registry.Get("LocusLink").Refresh()
		}
		res, _, err := sys.Query(e15Query)
		if err != nil {
			b.Fatal(err)
		}
		if res.Size() == 0 {
			b.Fatal("empty answer")
		}
	}
}

func BenchmarkE15_DeltaRefresh1k(b *testing.B)  { benchmarkE15(b, 1000, true) }
func BenchmarkE15_FullRefresh1k(b *testing.B)   { benchmarkE15(b, 1000, false) }
func BenchmarkE15_DeltaRefresh10k(b *testing.B) { benchmarkE15(b, 10000, true) }
func BenchmarkE15_FullRefresh10k(b *testing.B)  { benchmarkE15(b, 10000, false) }

// --- E16: lock-free snapshot epochs + parallel fusion + batch eval ----------

// e16Distinct generates the i-th of 1024 distinct snapshot-safe questions
// in the THEA profile: a selective symbol extraction plus bit-selected
// structural conjuncts, so evaluation is traversal-bound rather than
// answer-construction-bound.
func e16Distinct(i int) string {
	opts := [...]string{
		" and exists G.Annotation",
		" and exists G.Annotation.GoID",
		" and exists G.Annotation.Evidence",
		" and exists G.Annotation.Term",
		" and exists G.Annotation.Organism",
		" and exists G.Links",
		" and exists G.Links.GO",
		" and exists G.Links.OMIM",
		" and not exists G.Disease",
		" and not exists G.Disease.MimNumber",
	}
	var sb strings.Builder
	sb.WriteString(`select G.Symbol from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease`)
	for bit := 0; bit < len(opts); bit++ {
		if i&(1<<bit) != 0 {
			sb.WriteString(opts[bit])
		}
	}
	return sb.String()
}

// e16Queries returns n distinct snapshot-safe questions.
func e16Queries(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = e16Distinct(i % 1024)
	}
	return out
}

// benchmarkE16ConcurrentEval isolates the snapshot read path: many
// goroutines evaluate compiled selective plans (traversal-heavy,
// one-gene answers, so graph reads dominate answer construction) against
// the shared fused graph. The epoch variant reads the frozen snapshot —
// no lock held, one atomic flag load per object access. The baseline
// variant reproduces the retired design: an unfrozen graph whose every
// Get takes the graph RWMutex, plus the shared snapshot read lock held
// across eval.
func benchmarkE16ConcurrentEval(b *testing.B, rwmutexBaseline bool) {
	sys, err := core.New(benchCorpus(1000), mediator.Options{DisableCache: rwmutexBaseline})
	if err != nil {
		b.Fatal(err)
	}
	g, _, err := sys.Manager.FusedGraph()
	if err != nil {
		b.Fatal(err)
	}
	plans := make([]*lorel.Plan, 0, 256)
	for i := 0; i < 256; i++ {
		sym := sys.Corpus.Genes[i%len(sys.Corpus.Genes)].Symbol
		src := `select G.Symbol from ANNODA-GML.Gene G where G.Symbol = "` + sym +
			`" and exists G.Annotation`
		p, err := lorel.Compile(lorel.MustParse(src))
		if err != nil {
			b.Fatal(err)
		}
		plans = append(plans, p)
	}
	g.EnsureLabelIndex()
	var snapMu sync.RWMutex
	var n atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(n.Add(1)) % len(plans)
			if rwmutexBaseline {
				snapMu.RLock()
			}
			_, err := plans[i].Eval(g)
			if rwmutexBaseline {
				snapMu.RUnlock()
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE16_ConcurrentEvalEpoch(b *testing.B) { benchmarkE16ConcurrentEval(b, false) }
func BenchmarkE16_ConcurrentEvalRWMutexBaseline(b *testing.B) {
	benchmarkE16ConcurrentEval(b, true)
}

// BenchmarkE16_ConcurrentDistinctQuestions: the end-to-end manager path
// under concurrent distinct questions with a deliberately tiny result
// cache, so nearly every request runs the lock-free epoch eval instead of
// being a cache hit.
func BenchmarkE16_ConcurrentDistinctQuestions(b *testing.B) {
	sys, err := core.New(benchCorpus(1000), mediator.Options{CacheSize: 16})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := sys.Query(e16Distinct(0)); err != nil { // warm the epoch
		b.Fatal(err)
	}
	var n atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(n.Add(1))
			if _, _, err := sys.Query(e16Distinct(i % 1024)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE16_QueriesUnderRefreshChurn: distinct snapshot questions while
// a background goroutine continuously edits LocusLink and publishes
// patched epochs. Under the retired RWMutex design every patch stalled
// every reader; with epochs the readers never block — compare ns/op
// against BenchmarkE16_ConcurrentDistinctQuestions (the churn-free
// variant).
func BenchmarkE16_QueriesUnderRefreshChurn(b *testing.B) {
	sys, err := core.New(benchCorpus(1000), mediator.Options{CacheSize: 16})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := sys.Query(e16Distinct(0)); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		r := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			r++
			id := sys.Corpus.Genes[r%len(sys.Corpus.Genes)].LocusID
			rev := fmt.Sprintf("churn %d", r)
			if err := sys.LocusLink.Update(id, func(l *locuslink.Locus) { l.Description = rev }); err != nil {
				b.Error(err)
				return
			}
			if _, err := sys.Manager.RefreshSource("LocusLink"); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	var n atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(n.Add(1))
			if _, _, err := sys.Query(e16Distinct(i % 1024)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-churnDone
}

// BenchmarkE16_AskBatch64: 64 distinct questions per iteration through the
// batch API — one pinned epoch, concurrent eval.
func BenchmarkE16_AskBatch64(b *testing.B) {
	sys, err := core.New(benchCorpus(1000), mediator.Options{CacheSize: 16, Workers: 8})
	if err != nil {
		b.Fatal(err)
	}
	queries := e16Queries(64)
	if _, _, err := sys.QueryBatch(queries[:1]); err != nil { // warm the epoch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		answers, _, err := sys.QueryBatch(queries)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range answers {
			if a.Err != nil {
				b.Fatal(a.Err)
			}
		}
	}
}

// BenchmarkE16_SequentialAsks64: the same 64 questions answered one at a
// time — what a THEA-style analysis paid before the batch API.
func BenchmarkE16_SequentialAsks64(b *testing.B) {
	sys, err := core.New(benchCorpus(1000), mediator.Options{CacheSize: 16})
	if err != nil {
		b.Fatal(err)
	}
	queries := e16Queries(64)
	if _, _, err := sys.Query(queries[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, _, err := sys.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchmarkE16ColdFuse builds the recorded fused snapshot from scratch
// each iteration — the cold-start and MaxDeltaFraction-fallback cost the
// parallel sharded fusion exists to cut.
func benchmarkE16ColdFuse(b *testing.B, genes int, sequentialFuse bool) {
	sys := benchSystem(b, genes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Workers is pinned so the parallel variant shards even when the
		// benchmark host caps GOMAXPROCS below the fan-out.
		m := mediator.New(sys.Registry, sys.Global, mediator.Options{SequentialFuse: sequentialFuse, Workers: 8})
		g, _, err := m.FusedGraph()
		if err != nil {
			b.Fatal(err)
		}
		if g.Len() == 0 {
			b.Fatal("empty fused graph")
		}
	}
}

func BenchmarkE16_ColdFuse10kSequential(b *testing.B) { benchmarkE16ColdFuse(b, 10000, true) }
func BenchmarkE16_ColdFuse10kParallel(b *testing.B)   { benchmarkE16ColdFuse(b, 10000, false) }

// runLorel evaluates a Lorel query on a graph and returns the answer size.
func runLorel(g *oem.Graph, src string) (int, string, error) {
	q, err := lorel.Parse(src)
	if err != nil {
		return 0, "", err
	}
	res, err := lorel.Eval(g, q)
	if err != nil {
		return 0, "", err
	}
	return res.Size(), oem.TextString(res.Graph, "answer", res.Answer), nil
}

// --- E17: durable snapshot store — warm restore vs cold fetch+fuse ----------

// benchE17Prime checkpoints a system's fused world into dir and returns
// the (registry, global model) pair a "restarted process" reuses.
func benchE17Prime(b *testing.B, genes int, dir string) *core.System {
	b.Helper()
	sys := benchSystem(b, genes)
	st, err := snapstore.Open(dir, snapstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Manager.EnablePersistence(st, mediator.PersistPolicy{}); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Manager.SaveSnapshot(); err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	return sys
}

// benchmarkE17ColdFuse is the restart baseline: every iteration plays a
// freshly booted process without a snapshot store — wrapper models rebuild
// from native storage and the mediator fetches, translates and fuses the
// whole world before the first query can be answered.
func benchmarkE17ColdFuse(b *testing.B, genes int) {
	sys := benchSystem(b, genes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, w := range sys.Registry.All() {
			w.Refresh() // a restarted process holds no cached models
		}
		b.StartTimer()
		m := mediator.New(sys.Registry, sys.Global, mediator.Options{})
		g, _, err := m.FusedGraph()
		if err != nil {
			b.Fatal(err)
		}
		if g.Len() == 0 {
			b.Fatal("empty fused graph")
		}
	}
}

// benchmarkE17Restore plays the same restart against a primed data dir:
// open the store, decode the newest checkpoint, replay its (empty) WAL,
// publish — no wrapper fetch, no fusion.
func benchmarkE17Restore(b *testing.B, genes int) {
	dir := b.TempDir()
	sys := benchE17Prime(b, genes, dir)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mediator.New(sys.Registry, sys.Global, mediator.Options{})
		st, err := snapstore.Open(dir, snapstore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.EnablePersistence(st, mediator.PersistPolicy{}); err != nil {
			b.Fatal(err)
		}
		rr, err := m.LoadSnapshot()
		if err != nil {
			b.Fatal(err)
		}
		if !rr.Restored {
			b.Fatalf("restore fell back: %+v", rr)
		}
		g, _, err := m.FusedGraph()
		if err != nil {
			b.Fatal(err)
		}
		if g.Len() == 0 {
			b.Fatal("empty restored graph")
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE17_ColdFuse1k(b *testing.B)  { benchmarkE17ColdFuse(b, 1000) }
func BenchmarkE17_Restore1k(b *testing.B)   { benchmarkE17Restore(b, 1000) }
func BenchmarkE17_ColdFuse10k(b *testing.B) { benchmarkE17ColdFuse(b, 10000) }
func BenchmarkE17_Restore10k(b *testing.B)  { benchmarkE17Restore(b, 10000) }

// BenchmarkE17_DeltaRefreshPersisted1k measures the persistence tax on the
// E15 refresh cycle: each iteration edits 1% of LocusLink, routes the
// refresh through RefreshSource — which (with persistence on) also encodes
// the ChangeSet and appends it to the delta WAL — and then asks the E15
// question. BenchmarkE15_DeltaRefresh1k is the identical cycle without
// persistence; the difference is the WAL's cost.
func BenchmarkE17_DeltaRefreshPersisted1k(b *testing.B) {
	sys, err := core.New(benchCorpus(1000), mediator.Options{CacheSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	st, err := snapstore.Open(b.TempDir(), snapstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	// A huge record bound keeps auto-checkpointing out of the steady-state
	// measurement (checkpoint cost is measured separately below).
	if err := sys.Manager.EnablePersistence(st, mediator.PersistPolicy{EveryRecords: 1 << 30, EveryBytes: 1 << 50}); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Manager.SaveSnapshot(); err != nil {
		b.Fatal(err)
	}
	loci := make([]int, 0, 10)
	for i := range sys.Corpus.Genes {
		if len(loci) == 10 {
			break
		}
		loci = append(loci, sys.Corpus.Genes[i].LocusID)
	}
	if _, stats, err := sys.Query(e15Query); err != nil {
		b.Fatal(err)
	} else if !stats.SnapshotUsed {
		b.Fatal("warm query missed the snapshot path")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rev := fmt.Sprintf("revision %d", i)
		for _, id := range loci {
			if err := sys.LocusLink.Update(id, func(l *locuslink.Locus) { l.Description = rev }); err != nil {
				b.Fatal(err)
			}
		}
		rr, err := sys.Manager.RefreshSource("LocusLink")
		if err != nil {
			b.Fatal(err)
		}
		if rr.FullRebuild || !rr.Patched {
			b.Fatalf("delta path not taken: %+v", rr)
		}
		res, _, err := sys.Query(e15Query)
		if err != nil {
			b.Fatal(err)
		}
		if res.Size() == 0 {
			b.Fatal("empty answer")
		}
	}
	b.StopTimer()
	if pc, _ := sys.Manager.PersistCounters(); pc.WALAppended < int64(b.N) {
		b.Fatalf("WAL appends %d < iterations %d", pc.WALAppended, b.N)
	}
}

// BenchmarkE17_RestoreReplay32_1k restores a store whose checkpoint is 32
// refreshes old: checkpoint decode plus 32 ChangeSet replays through the
// patch path — the worst case the default auto-checkpoint policy permits
// is twice this.
func BenchmarkE17_RestoreReplay32_1k(b *testing.B) {
	dir := b.TempDir()
	sys, err := core.New(benchCorpus(1000), mediator.Options{CacheSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	st, err := snapstore.Open(dir, snapstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Manager.EnablePersistence(st, mediator.PersistPolicy{EveryRecords: 1 << 30, EveryBytes: 1 << 50}); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Manager.SaveSnapshot(); err != nil {
		b.Fatal(err)
	}
	loci := make([]int, 0, 10)
	for i := range sys.Corpus.Genes {
		if len(loci) == 10 {
			break
		}
		loci = append(loci, sys.Corpus.Genes[i].LocusID)
	}
	for r := 0; r < 32; r++ {
		rev := fmt.Sprintf("churn %d", r)
		for _, id := range loci {
			if err := sys.LocusLink.Update(id, func(l *locuslink.Locus) { l.Description = rev }); err != nil {
				b.Fatal(err)
			}
		}
		rr, err := sys.Manager.RefreshSource("LocusLink")
		if err != nil {
			b.Fatal(err)
		}
		if !rr.Patched {
			b.Fatalf("churn refresh %d did not patch: %+v", r, rr)
		}
	}
	if pc, _ := sys.Manager.PersistCounters(); pc.WALAppended != 32 {
		b.Fatalf("WAL has %d records, want 32", pc.WALAppended)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mediator.New(sys.Registry, sys.Global, mediator.Options{CacheSize: 4096})
		st, err := snapstore.Open(dir, snapstore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.EnablePersistence(st, mediator.PersistPolicy{}); err != nil {
			b.Fatal(err)
		}
		rr, err := m.LoadSnapshot()
		if err != nil {
			b.Fatal(err)
		}
		if !rr.Restored || rr.WALReplayed != 32 {
			b.Fatalf("restore: %+v, want 32 replayed records", rr)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE17_CheckpointWrite isolates the cost of one checkpoint:
// encode the fused world and write it durably (fsync + atomic rename).
func BenchmarkE17_CheckpointWrite1k(b *testing.B) {
	sys := benchSystem(b, 1000)
	st, err := snapstore.Open(b.TempDir(), snapstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if err := sys.Manager.EnablePersistence(st, mediator.PersistPolicy{}); err != nil {
		b.Fatal(err)
	}
	if _, _, err := sys.Manager.FusedGraph(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Manager.SaveSnapshot(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E18: live change feeds — fan-out, standing queries vs polling --------

// benchmarkE18Fanout: one hub publish delivered to every subscriber, each
// drained by its own consumer goroutine through the Notify/Next protocol.
// Measures the full publish-to-consumed path, not just the enqueue.
func benchmarkE18Fanout(b *testing.B, subs int) {
	h := feed.NewHub()
	var consumed atomic.Int64
	var wg sync.WaitGroup
	subscribers := make([]*feed.Subscriber, subs)
	for i := range subscribers {
		s := h.Subscribe(feed.Options{Buffer: 256})
		subscribers[i] = s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				for {
					if _, ok := s.Next(); !ok {
						break
					}
					consumed.Add(1)
				}
				if s.Closed() {
					return
				}
				<-s.Notify()
			}
		}()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Publish(feed.Event{
			Kind: feed.KindChange, Source: "GO",
			Concepts: []string{"Annotation"}, Fingerprint: uint64(i + 1),
		}, nil)
		for target := int64(subs) * int64(i+1); consumed.Load() < target; {
			runtime.Gosched()
			target = int64(subs) * int64(i+1)
		}
	}
	b.StopTimer()
	for _, s := range subscribers {
		s.Close()
	}
	wg.Wait()
}

func BenchmarkE18_NotifyFanout100(b *testing.B)  { benchmarkE18Fanout(b, 100) }
func BenchmarkE18_NotifyFanout1000(b *testing.B) { benchmarkE18Fanout(b, 1000) }

// e18AnswerLocus finds a gene inside the watched query's answer set (GO
// annotations, no disease, description survives fusion), so a description
// edit changes the pushed answer every round.
func e18AnswerLocus(b *testing.B, c *datagen.Corpus) int {
	b.Helper()
	diseased := map[int]bool{}
	for _, d := range c.Diseases {
		for _, l := range d.Loci {
			diseased[l] = true
		}
	}
	for i := range c.Genes {
		if len(c.Genes[i].GoTerms) > 0 && !diseased[c.Genes[i].LocusID] && !c.Genes[i].LLMissingDesc {
			return c.Genes[i].LocusID
		}
	}
	b.Fatal("corpus has no annotated, disease-free gene")
	return -1
}

const e18Query = `select G from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease`

// BenchmarkE18_StandingQueryPush: per answer-changing refresh, the standing
// query re-evaluates inline and pushes the fresh canonical answer into the
// subscriber queue — the server-side cost of keeping one watcher current.
func BenchmarkE18_StandingQueryPush(b *testing.B) {
	sys := benchSystem(b, 1000)
	if _, _, err := sys.Query(e18Query); err != nil {
		b.Fatal(err)
	}
	sub, err := sys.Manager.SubscribeChanges(feed.Options{Concepts: []string{"NoSuchConcept"}})
	if err != nil {
		b.Fatal(err)
	}
	defer sub.Close()
	sq, err := sys.Manager.AddStandingQuery(sub, e18Query)
	if err != nil {
		b.Fatal(err)
	}
	defer sq.Cancel()
	if _, ok := sub.Next(); !ok {
		b.Fatal("no baseline answer")
	}
	id := e18AnswerLocus(b, sys.Corpus)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rev := fmt.Sprintf("standing rev %d", i)
		if err := sys.LocusLink.Update(id, func(l *locuslink.Locus) { l.Description = rev }); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Manager.RefreshSource("LocusLink"); err != nil {
			b.Fatal(err)
		}
		ev, ok := sub.Next()
		if !ok || ev.Kind != feed.KindAnswer {
			b.Fatalf("round %d: no pushed answer (ok=%v kind=%v)", i, ok, ev.Kind)
		}
	}
}

// BenchmarkE18_PollAfterRefresh: the client-side alternative to a standing
// query — after every refresh, re-run the query and re-canonicalize to see
// whether the answer changed. Same edits, same refreshes, same output.
func BenchmarkE18_PollAfterRefresh(b *testing.B) {
	sys := benchSystem(b, 1000)
	if _, _, err := sys.Query(e18Query); err != nil {
		b.Fatal(err)
	}
	id := e18AnswerLocus(b, sys.Corpus)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rev := fmt.Sprintf("poll rev %d", i)
		if err := sys.LocusLink.Update(id, func(l *locuslink.Locus) { l.Description = rev }); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Manager.RefreshSource("LocusLink"); err != nil {
			b.Fatal(err)
		}
		res, _, err := sys.Query(e18Query)
		if err != nil {
			b.Fatal(err)
		}
		if oem.CanonicalText(res.Graph, "answer", res.Answer) == "" {
			b.Fatal("empty canonical answer")
		}
	}
}

// --- E19: observability overhead — traced vs untraced Ask --------------------

// benchmarkE19 measures the per-request cost of the obs layer on the
// cached Ask hot path. opts either carries a live obs bundle (op + stage
// histograms observed, a trace allocated and retired per request at the
// given sampling rate) or none (every obs call site takes the nil fast
// path). The acceptance bar is <5% on E13/E16-style workloads at default
// sampling.
func benchmarkE19(b *testing.B, opts mediator.Options) {
	sys, err := core.New(benchCorpus(1000), opts)
	if err != nil {
		b.Fatal(err)
	}
	q := core.Figure5bQuestion()
	if _, _, err := sys.Ask(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.Ask(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE19_AskUntraced(b *testing.B) { benchmarkE19(b, mediator.Options{}) }
func BenchmarkE19_AskTraced(b *testing.B) {
	benchmarkE19(b, mediator.Options{Obs: obs.New(obs.Config{})})
}
func BenchmarkE19_AskTracedSampled16(b *testing.B) {
	benchmarkE19(b, mediator.Options{Obs: obs.New(obs.Config{SampleEvery: 16})})
}

// benchmarkE19Concurrent is the E16-shaped variant: GOMAXPROCS goroutines
// hammering one System, traced vs not — the trace ring claim and the
// histogram observations are the only added shared-state writes.
func benchmarkE19Concurrent(b *testing.B, opts mediator.Options) {
	sys, err := core.New(benchCorpus(1000), opts)
	if err != nil {
		b.Fatal(err)
	}
	q := core.Figure5bQuestion()
	if _, _, err := sys.Ask(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := sys.Ask(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE19_ConcurrentAskUntraced(b *testing.B) {
	benchmarkE19Concurrent(b, mediator.Options{})
}
func BenchmarkE19_ConcurrentAskTraced(b *testing.B) {
	benchmarkE19Concurrent(b, mediator.Options{Obs: obs.New(obs.Config{})})
}

// --- E20: introspection overhead — EXPLAIN/ANALYZE and counted eval ----------

const e20Query = `select G from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease`

// BenchmarkE20_AskAnalyzeOff: the cached-Ask hot path with the instrumented
// evaluator in the binary but no counts attached — every note site takes the
// nil fast path. This is the number the <5% introspection-overhead bar is
// measured against.
func BenchmarkE20_AskAnalyzeOff(b *testing.B) {
	sys := benchSystem(b, 1000)
	q := core.Figure5bQuestion()
	if _, _, err := sys.Ask(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.Ask(q); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkE20Eval evaluates one compiled plan against the fused graph with
// and without a live EvalCounts — isolating the per-stage counting cost from
// everything else EXPLAIN ANALYZE does.
func benchmarkE20Eval(b *testing.B, counted bool) {
	sys := benchSystem(b, 1000)
	fused, _, err := sys.Manager.FusedGraph()
	if err != nil {
		b.Fatal(err)
	}
	q, err := lorel.Parse(e20Query)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := lorel.Compile(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ec *lorel.EvalCounts
		if counted {
			ec = &lorel.EvalCounts{}
		}
		if _, err := plan.EvalCounted(fused, ec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE20_EvalPlain(b *testing.B)   { benchmarkE20Eval(b, false) }
func BenchmarkE20_EvalCounted(b *testing.B) { benchmarkE20Eval(b, true) }

// benchmarkE20Explain measures the explain surface itself: plan-only (parse,
// analyze, plan, classify, render) and analyze (plus a counted execution
// against the pinned snapshot epoch).
func benchmarkE20Explain(b *testing.B, analyze bool) {
	sys := benchSystem(b, 1000)
	if _, _, err := sys.Query(e20Query); err != nil { // build the snapshot epoch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Manager.ExplainString(e20Query, analyze); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE20_ExplainPlanOnly(b *testing.B) { benchmarkE20Explain(b, false) }
func BenchmarkE20_ExplainAnalyze(b *testing.B)  { benchmarkE20Explain(b, true) }
