package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"strings"
)

// watchCmd implements `annoda watch`: subscribe to a running server's
// /api/watch change feed and print each event as it arrives. It is a plain
// SSE client — one GET, one long-lived connection — so it also doubles as
// a smoke test that the server's stream actually flushes incrementally.
func watchCmd(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	base := fs.String("url", "http://localhost:8077", "server base URL")
	concepts := fs.String("concepts", "", "comma-separated concept filter (empty = all)")
	query := fs.String("query", "", "Lorel source for a standing query pushed on change")
	summary := fs.Bool("summary", false, "include the encoded ChangeSet in change events")
	after := fs.Uint64("after", 0, "resume after this feed sequence number")
	buffer := fs.Int("buffer", 0, "server-side event buffer (0 = server default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := url.Values{}
	if *concepts != "" {
		params.Set("concepts", *concepts)
	}
	if *query != "" {
		params.Set("query", *query)
	}
	if *summary {
		params.Set("summary", "1")
	}
	if *after > 0 {
		params.Set("after", fmt.Sprint(*after))
	}
	if *buffer > 0 {
		params.Set("buffer", fmt.Sprint(*buffer))
	}
	target := strings.TrimRight(*base, "/") + "/api/watch"
	if len(params) > 0 {
		target += "?" + params.Encode()
	}

	resp, err := http.Get(target)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("server: %s (HTTP %d)", apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("GET %s: HTTP %d", target, resp.StatusCode)
	}
	fmt.Printf("watching %s (ctrl-c to stop)\n", target)

	// Minimal SSE parse: comments keep the connection visibly alive,
	// id/event/data triples become one printed line per event.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var id, event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" || data != "" {
				printWatchEvent(id, event, data)
				id, event, data = "", "", ""
			}
		case strings.HasPrefix(line, ": heartbeat"):
			// quiet keep-alive
		case strings.HasPrefix(line, "id: "):
			id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream ended: %v", err)
	}
	return fmt.Errorf("server closed the stream")
}

// printWatchEvent renders one feed event on a single line, decoding the
// JSON payload when it parses and falling back to the raw bytes.
func printWatchEvent(id, event, data string) {
	var ev struct {
		Seq         uint64   `json:"seq"`
		Source      string   `json:"source"`
		Concepts    []string `json:"concepts"`
		Fingerprint string   `json:"fingerprint"`
		Upserted    int      `json:"upserted"`
		Deleted     int      `json:"deleted"`
		Lost        uint64   `json:"lost"`
		Query       string   `json:"query"`
		Answers     int      `json:"answers"`
		Text        string   `json:"text"`
		Initial     bool     `json:"initial"`
	}
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		fmt.Printf("seq %s %-8s %s\n", id, event, data)
		return
	}
	switch event {
	case "change":
		fmt.Printf("seq %d change   %s -> %s: +%d/-%d (epoch %s)\n",
			ev.Seq, ev.Source, strings.Join(ev.Concepts, ","), ev.Upserted, ev.Deleted, ev.Fingerprint)
	case "rebuild":
		fmt.Printf("seq %d rebuild  %s: full re-fusion, all cached views invalid (epoch %s)\n",
			ev.Seq, ev.Source, ev.Fingerprint)
	case "overflow":
		fmt.Printf("seq %d overflow lost %d event(s); resync from epoch %s\n",
			ev.Seq, ev.Lost, ev.Fingerprint)
	case "answer":
		label := "changed"
		if ev.Initial {
			label = "baseline"
		}
		fmt.Printf("seq %d answer   %s: %d answer(s) [%s]\n", ev.Seq, ev.Query, ev.Answers, label)
		if ev.Text != "" {
			for _, l := range strings.Split(strings.TrimRight(ev.Text, "\n"), "\n") {
				fmt.Printf("    %s\n", l)
			}
		}
	default:
		fmt.Printf("seq %s %-8s %s\n", id, event, data)
	}
}
