// Command annoda is the command-line interface to the ANNODA system.
//
// Usage:
//
//	annoda [-genes N] [-seed S] <subcommand> [args]
//
// Subcommands:
//
//	corpus                     print corpus statistics
//	oml <source> [i]           Figure 3 OML text for record i of a source
//	gml                        describe the global model mappings
//	query <lorel>              run a global Lorel query through the mediator
//	explain [-analyze] <lorel> the query plan: plan tree, source prune and
//	                           pushdown decisions with reasons, snapshot-path
//	                           routing; -analyze also executes it and prints
//	                           per-stage cardinalities and timings
//	ask [flags...]             run a biological question (Figure 5(a))
//	show <url>                 individual object view for a web-link (5(c))
//	sql <query>                DiscoveryLink-style SQL against nicknames
//	table1                     regenerate the paper's Table 1
//	snapshot save              write a durable snapshot checkpoint to -data-dir
//	snapshot info              inspect the newest restorable checkpoint in -data-dir
//	watch [flags]              follow a running server's change feed (SSE)
//	traces [flags]             dump a running server's recent/slow request traces
//	sources [flags]            a running server's per-source health: breaker
//	                           state, failure/retry/probe counters, epoch
//	                           membership (-json for the raw /readyz payload)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/capability"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fedsql"
	"repro/internal/mediator"
	"repro/internal/snapstore"
	"repro/internal/warehouse"
	"repro/internal/wrapper"
)

func main() {
	genes := flag.Int("genes", 1000, "corpus size (genes)")
	seed := flag.Uint64("seed", 20050405, "corpus seed")
	policy := flag.String("policy", "prefer-primary", "reconciliation policy: prefer-primary|majority|union")
	protdb := flag.Bool("protdb", false, "plug the protein source in at startup")
	dataDir := flag.String("data-dir", "", "durable snapshot store directory (snapshot subcommands)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	// `snapshot info` reads the store directly — no corpus, no system, no
	// source fetch; an operator can point it at any data dir.
	if args[0] == "snapshot" && len(args) > 1 && args[1] == "info" {
		if err := snapshotInfo(*dataDir); err != nil {
			fatal(err)
		}
		return
	}
	// `watch` talks to a running server — generating a corpus here would
	// only slow the subscription down.
	if args[0] == "watch" {
		if err := watchCmd(args[1:]); err != nil {
			fatal(err)
		}
		return
	}
	// `traces` likewise queries a running server's debug rings.
	if args[0] == "traces" {
		if err := tracesCmd(args[1:]); err != nil {
			fatal(err)
		}
		return
	}
	// `sources` likewise renders a running server's /readyz health view.
	if args[0] == "sources" {
		if err := sourcesCmd(args[1:]); err != nil {
			fatal(err)
		}
		return
	}

	cfg := datagen.DefaultConfig()
	cfg.Genes = *genes
	cfg.Seed = *seed
	c := datagen.Generate(cfg)
	opts := mediator.Options{}
	switch *policy {
	case "prefer-primary":
		opts.Policy = mediator.PolicyPreferPrimary
	case "majority":
		opts.Policy = mediator.PolicyMajority
	case "union":
		opts.Policy = mediator.PolicyUnion
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}
	sys, err := core.New(c, opts)
	if err != nil {
		fatal(err)
	}
	if *protdb {
		if err := sys.PlugInProteins(); err != nil {
			fatal(err)
		}
	}

	switch args[0] {
	case "corpus":
		fmt.Printf("seed %d: %d genes, %d GO terms, %d diseases\n", cfg.Seed, len(c.Genes), len(c.Terms), len(c.Diseases))
		fmt.Printf("figure-5b ground truth: %d genes with GO but no OMIM\n", len(c.GenesWithGoButNotOMIM()))
		fmt.Printf("conflicting genes: %d\n", len(c.ConflictingGenes()))
	case "oml":
		if len(args) < 2 {
			fatal(fmt.Errorf("usage: annoda oml <source> [index]"))
		}
		w := sys.Registry.Get(args[1])
		if w == nil {
			fatal(fmt.Errorf("unknown source %q (have %v)", args[1], sys.Registry.Names()))
		}
		i := 0
		if len(args) > 2 {
			i, err = strconv.Atoi(args[2])
			if err != nil {
				fatal(err)
			}
		}
		text, err := wrapper.FragmentText(w, i)
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
	case "gml":
		fmt.Print(sys.Global.Describe())
	case "query":
		if len(args) < 2 {
			fatal(fmt.Errorf("usage: annoda query '<lorel>'"))
		}
		res, stats, err := sys.Query(strings.Join(args[1:], " "))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("answer: %d edges\n", res.Size())
		fmt.Print(stats.String())
	case "explain":
		rest := args[1:]
		analyze := false
		if len(rest) > 0 && rest[0] == "-analyze" {
			analyze = true
			rest = rest[1:]
		}
		if len(rest) == 0 {
			fatal(fmt.Errorf("usage: annoda explain [-analyze] '<lorel>'"))
		}
		e, err := sys.Manager.ExplainString(strings.Join(rest, " "), analyze)
		if err != nil {
			fatal(err)
		}
		fmt.Print(e.Format())
	case "ask":
		q, err := parseQuestion(args[1:])
		if err != nil {
			fatal(err)
		}
		v, stats, err := sys.Ask(q)
		if err != nil {
			fatal(err)
		}
		fmt.Print(v.Format())
		fmt.Print(stats.String())
	case "show":
		if len(args) < 2 {
			fatal(fmt.Errorf("usage: annoda show <url>"))
		}
		out, err := sys.ObjectView(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case "sql":
		if len(args) < 2 {
			fatal(fmt.Errorf("usage: annoda sql '<select>'"))
		}
		rs, err := fedsql.New(sys.Registry).Query(strings.Join(args[1:], " "))
		if err != nil {
			fatal(err)
		}
		fmt.Print(rs.Format())
	case "table1":
		gus := warehouse.New(sys.Registry, sys.Global)
		if err := gus.Refresh(); err != nil {
			fatal(err)
		}
		rows, err := capability.BuildTable(&capability.Fixture{
			ANNODA:  sys,
			Kleisli: &capability.WrappedMultidb{System: sys},
			DL:      fedsql.New(sys.Registry),
			GUS:     gus,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(capability.Format(rows))
	case "snapshot":
		if len(args) < 2 {
			fatal(fmt.Errorf("usage: annoda -data-dir DIR snapshot save|info"))
		}
		switch args[1] {
		case "save":
			if err := snapshotSave(sys, *dataDir); err != nil {
				fatal(err)
			}
		default:
			fatal(fmt.Errorf("unknown snapshot subcommand %q (want save or info)", args[1]))
		}
	default:
		fatal(fmt.Errorf("unknown subcommand %q", args[0]))
	}
}

// snapshotSave builds the fused world (if not already built) and writes a
// checkpoint — the operational "prime the warm-restart store" verb. The
// checkpoint records the source set it was fused from, and restore rejects
// a mismatch: to prime a store for annoda-server (which always plugs the
// protein source in), pass -protdb.
func snapshotSave(sys *core.System, dataDir string) error {
	if dataDir == "" {
		return fmt.Errorf("snapshot save needs -data-dir")
	}
	st, err := snapstore.Open(dataDir, snapstore.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	if err := sys.Manager.EnablePersistence(st, mediator.PersistPolicy{}); err != nil {
		return err
	}
	// No restore first: the point of `snapshot save` is to checkpoint the
	// world fused from the *current* corpus flags, not to rewrite the old
	// one (EnablePersistence already continued the store's sequence).
	res, err := sys.Manager.SaveSnapshot()
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint seq %d written to %s: %d bytes in %v\n",
		res.Seq, dataDir, res.Bytes, res.Took)
	return nil
}

// snapshotInfo prints the newest restorable checkpoint's vitals.
func snapshotInfo(dataDir string) error {
	if dataDir == "" {
		return fmt.Errorf("snapshot info needs -data-dir")
	}
	st, err := snapstore.Open(dataDir, snapstore.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	info, err := mediator.SnapshotInfo(st)
	if err != nil {
		return err
	}
	fmt.Printf("store:         %s\n", dataDir)
	fmt.Printf("checkpoint:    seq %d (%d bytes, container format v%d)\n", info.Seq, info.PayloadBytes, snapstore.FormatVersion)
	if info.Skipped > 0 {
		fmt.Printf("skipped:       %d newer unrestorable checkpoint(s)\n", info.Skipped)
	}
	fmt.Printf("fingerprint:   %016x\n", info.Fingerprint)
	fmt.Printf("policy:        %v\n", info.Policy)
	fmt.Printf("fused genes:   %d\n", info.Genes)
	fmt.Printf("graph objects: %d\n", info.Objects)
	fmt.Printf("conflicts:     %d\n", info.Conflicts)
	srcs := make([]string, 0, len(info.Entities))
	for s := range info.Entities {
		srcs = append(srcs, s)
	}
	sort.Strings(srcs)
	for _, s := range srcs {
		fmt.Printf("  %-12s %d entities\n", s, info.Entities[s])
	}
	if info.WALTruncated {
		fmt.Printf("wal:           %d records (+ torn tail that restore will drop)\n", info.WALRecords)
	} else {
		fmt.Printf("wal:           %d records\n", info.WALRecords)
	}
	if info.StaleFiles > 0 {
		fmt.Printf("stale files:   %d (pruning failed; remove them manually to reclaim space)\n", info.StaleFiles)
	}
	return nil
}

// parseQuestion turns "include=GO exclude=OMIM combine=any cond=Organism=Homo sapiens"
// style arguments into a Question.
func parseQuestion(args []string) (core.Question, error) {
	var q core.Question
	for _, a := range args {
		k, v, ok := strings.Cut(a, "=")
		if !ok {
			return q, fmt.Errorf("bad question argument %q (want key=value)", a)
		}
		switch k {
		case "include":
			q.Include = append(q.Include, strings.Split(v, ",")...)
		case "exclude":
			q.Exclude = append(q.Exclude, strings.Split(v, ",")...)
		case "combine":
			if v == "any" {
				q.Combine = core.CombineAny
			}
		case "cond":
			parts := strings.SplitN(v, ":", 3)
			if len(parts) != 3 {
				return q, fmt.Errorf("bad cond %q (want field:op:value)", v)
			}
			q.Conditions = append(q.Conditions, core.Condition{Field: parts[0], Op: parts[1], Value: parts[2]})
		default:
			return q, fmt.Errorf("unknown question key %q", k)
		}
	}
	return q, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "annoda:", err)
	os.Exit(1)
}
