// Command annoda is the command-line interface to the ANNODA system.
//
// Usage:
//
//	annoda [-genes N] [-seed S] <subcommand> [args]
//
// Subcommands:
//
//	corpus                     print corpus statistics
//	oml <source> [i]           Figure 3 OML text for record i of a source
//	gml                        describe the global model mappings
//	query <lorel>              run a global Lorel query through the mediator
//	ask [flags...]             run a biological question (Figure 5(a))
//	show <url>                 individual object view for a web-link (5(c))
//	sql <query>                DiscoveryLink-style SQL against nicknames
//	table1                     regenerate the paper's Table 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/capability"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fedsql"
	"repro/internal/mediator"
	"repro/internal/warehouse"
	"repro/internal/wrapper"
)

func main() {
	genes := flag.Int("genes", 1000, "corpus size (genes)")
	seed := flag.Uint64("seed", 20050405, "corpus seed")
	policy := flag.String("policy", "prefer-primary", "reconciliation policy: prefer-primary|majority|union")
	protdb := flag.Bool("protdb", false, "plug the protein source in at startup")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := datagen.DefaultConfig()
	cfg.Genes = *genes
	cfg.Seed = *seed
	c := datagen.Generate(cfg)
	opts := mediator.Options{}
	switch *policy {
	case "prefer-primary":
		opts.Policy = mediator.PolicyPreferPrimary
	case "majority":
		opts.Policy = mediator.PolicyMajority
	case "union":
		opts.Policy = mediator.PolicyUnion
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}
	sys, err := core.New(c, opts)
	if err != nil {
		fatal(err)
	}
	if *protdb {
		if err := sys.PlugInProteins(); err != nil {
			fatal(err)
		}
	}

	switch args[0] {
	case "corpus":
		fmt.Printf("seed %d: %d genes, %d GO terms, %d diseases\n", cfg.Seed, len(c.Genes), len(c.Terms), len(c.Diseases))
		fmt.Printf("figure-5b ground truth: %d genes with GO but no OMIM\n", len(c.GenesWithGoButNotOMIM()))
		fmt.Printf("conflicting genes: %d\n", len(c.ConflictingGenes()))
	case "oml":
		if len(args) < 2 {
			fatal(fmt.Errorf("usage: annoda oml <source> [index]"))
		}
		w := sys.Registry.Get(args[1])
		if w == nil {
			fatal(fmt.Errorf("unknown source %q (have %v)", args[1], sys.Registry.Names()))
		}
		i := 0
		if len(args) > 2 {
			i, err = strconv.Atoi(args[2])
			if err != nil {
				fatal(err)
			}
		}
		text, err := wrapper.FragmentText(w, i)
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
	case "gml":
		fmt.Print(sys.Global.Describe())
	case "query":
		if len(args) < 2 {
			fatal(fmt.Errorf("usage: annoda query '<lorel>'"))
		}
		res, stats, err := sys.Query(strings.Join(args[1:], " "))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("answer: %d edges\n", res.Size())
		fmt.Print(stats.String())
	case "ask":
		q, err := parseQuestion(args[1:])
		if err != nil {
			fatal(err)
		}
		v, stats, err := sys.Ask(q)
		if err != nil {
			fatal(err)
		}
		fmt.Print(v.Format())
		fmt.Print(stats.String())
	case "show":
		if len(args) < 2 {
			fatal(fmt.Errorf("usage: annoda show <url>"))
		}
		out, err := sys.ObjectView(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case "sql":
		if len(args) < 2 {
			fatal(fmt.Errorf("usage: annoda sql '<select>'"))
		}
		rs, err := fedsql.New(sys.Registry).Query(strings.Join(args[1:], " "))
		if err != nil {
			fatal(err)
		}
		fmt.Print(rs.Format())
	case "table1":
		gus := warehouse.New(sys.Registry, sys.Global)
		if err := gus.Refresh(); err != nil {
			fatal(err)
		}
		rows, err := capability.BuildTable(&capability.Fixture{
			ANNODA:  sys,
			Kleisli: &capability.WrappedMultidb{System: sys},
			DL:      fedsql.New(sys.Registry),
			GUS:     gus,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(capability.Format(rows))
	default:
		fatal(fmt.Errorf("unknown subcommand %q", args[0]))
	}
}

// parseQuestion turns "include=GO exclude=OMIM combine=any cond=Organism=Homo sapiens"
// style arguments into a Question.
func parseQuestion(args []string) (core.Question, error) {
	var q core.Question
	for _, a := range args {
		k, v, ok := strings.Cut(a, "=")
		if !ok {
			return q, fmt.Errorf("bad question argument %q (want key=value)", a)
		}
		switch k {
		case "include":
			q.Include = append(q.Include, strings.Split(v, ",")...)
		case "exclude":
			q.Exclude = append(q.Exclude, strings.Split(v, ",")...)
		case "combine":
			if v == "any" {
				q.Combine = core.CombineAny
			}
		case "cond":
			parts := strings.SplitN(v, ":", 3)
			if len(parts) != 3 {
				return q, fmt.Errorf("bad cond %q (want field:op:value)", v)
			}
			q.Conditions = append(q.Conditions, core.Condition{Field: parts[0], Op: parts[1], Value: parts[2]})
		default:
			return q, fmt.Errorf("unknown question key %q", k)
		}
	}
	return q, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "annoda:", err)
	os.Exit(1)
}
