package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"strings"
)

// sourcesCmd implements `annoda sources`: fetch a running server's /readyz
// verdict and render the per-source health table — breaker state, failure
// streaks, retry/probe counters and epoch membership — the operator's
// answer to "which sources is the mediator actually serving from".
func sourcesCmd(args []string) error {
	fs := flag.NewFlagSet("sources", flag.ExitOnError)
	base := fs.String("url", "http://localhost:8077", "server base URL")
	jsonOut := fs.Bool("json", false, "dump the raw /readyz payload")
	if err := fs.Parse(args); err != nil {
		return err
	}

	target := strings.TrimRight(*base, "/") + "/readyz"
	resp, err := http.Get(target)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// /readyz answers 503 when down (that is its job); the body is the
	// health view either way, so keep rendering.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("GET %s: HTTP %d", target, resp.StatusCode)
	}

	var payload struct {
		Status  string `json:"status"`
		Sources []struct {
			Source              string `json:"source"`
			State               string `json:"state"`
			ConsecutiveFailures int    `json:"consecutive_failures"`
			Successes           uint64 `json:"successes"`
			Failures            uint64 `json:"failures"`
			Retries             uint64 `json:"retries"`
			Probes              uint64 `json:"probes"`
			BreakerOpens        uint64 `json:"breaker_opens"`
			LastError           string `json:"last_error"`
			MissingFromEpoch    bool   `json:"missing_from_epoch"`
		} `json:"sources"`
	}
	body := json.NewDecoder(resp.Body)
	if err := body.Decode(&payload); err != nil {
		return fmt.Errorf("decode %s: %v", target, err)
	}
	if *jsonOut {
		out, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}

	fmt.Printf("readiness: %s (HTTP %d)\n", payload.Status, resp.StatusCode)
	fmt.Printf("%-12s %-9s %-6s %9s %9s %8s %7s %6s  %s\n",
		"SOURCE", "STATE", "EPOCH", "SUCCESSES", "FAILURES", "RETRIES", "PROBES", "OPENS", "LAST ERROR")
	for _, s := range payload.Sources {
		epoch := "in"
		if s.MissingFromEpoch {
			epoch = "OUT"
		}
		state := s.State
		if s.ConsecutiveFailures > 0 {
			state = fmt.Sprintf("%s(%d)", s.State, s.ConsecutiveFailures)
		}
		lastErr := s.LastError
		if len(lastErr) > 48 {
			lastErr = lastErr[:45] + "..."
		}
		fmt.Printf("%-12s %-9s %-6s %9d %9d %8d %7d %6d  %s\n",
			s.Source, state, epoch, s.Successes, s.Failures, s.Retries, s.Probes, s.BreakerOpens, lastErr)
	}
	return nil
}
