package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/obs"
)

// tracesCmd implements `annoda traces`: fetch a running server's
// /api/debug/traces rings and render them as a compact per-request stage
// breakdown — the operator's answer to "where did the time go" without
// attaching a profiler.
func tracesCmd(args []string) error {
	fs := flag.NewFlagSet("traces", flag.ExitOnError)
	base := fs.String("url", "http://localhost:8077", "server base URL")
	slow := fs.Bool("slow", false, "show the slow-trace ring instead of the recent ring")
	limit := fs.Int("n", 20, "show at most this many traces")
	spans := fs.Bool("spans", true, "show per-stage spans under each trace")
	opFilter := fs.String("op", "", "only show traces with this op (e.g. http, refresh)")
	jsonOut := fs.Bool("json", false, "dump the raw /api/debug/traces payload")
	if err := fs.Parse(args); err != nil {
		return err
	}

	target := strings.TrimRight(*base, "/") + "/api/debug/traces"
	resp, err := http.Get(target)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("server: %s (HTTP %d)", apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("GET %s: HTTP %d", target, resp.StatusCode)
	}

	var payload struct {
		SlowThresholdMicros int64           `json:"slow_threshold_micros"`
		Recent              []obs.TraceView `json:"recent"`
		Slow                []obs.TraceView `json:"slow"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return fmt.Errorf("decode %s: %v", target, err)
	}
	if *jsonOut {
		out, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}

	ring, label := payload.Recent, "recent"
	if *slow {
		ring, label = payload.Slow, "slow"
	}
	shown := ring
	if *opFilter != "" {
		shown = shown[:0:0]
		for _, tv := range ring {
			if tv.Op == *opFilter {
				shown = append(shown, tv)
			}
		}
	}
	if *limit > 0 && len(shown) > *limit {
		shown = shown[:*limit]
	}
	fmt.Printf("%s traces: %d shown of %d (slow threshold %s)\n",
		label, len(shown), len(ring), microsString(payload.SlowThresholdMicros))
	for _, tv := range shown {
		printTrace(tv, *spans)
	}
	return nil
}

func printTrace(tv obs.TraceView, withSpans bool) {
	line := fmt.Sprintf("%s  %-8s %8s  %s",
		tv.ID, tv.Op, microsString(tv.DurMicros), tv.Detail)
	if tv.Err != "" {
		line += "  ERR " + tv.Err
	}
	fmt.Println(strings.TrimRight(line, " "))
	if !withSpans {
		return
	}
	// Spans print in recorded (start) order; a stable sort by offset keeps
	// nested stages readable when goroutines interleaved their recording.
	spans := append([]obs.SpanView(nil), tv.Spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].OffsetMicros < spans[j].OffsetMicros })
	for _, sp := range spans {
		note := sp.Note
		if note != "" {
			note = "  " + note
		}
		fmt.Printf("    +%-9s %-16s %8s%s\n",
			microsString(sp.OffsetMicros), sp.Stage, microsString(sp.DurMicros), note)
	}
}

// microsString renders a microsecond count with a human unit: µs under a
// millisecond, ms under a second, s beyond.
func microsString(us int64) string {
	switch {
	case us < 1000:
		return fmt.Sprintf("%dµs", us)
	case us < 1_000_000:
		return fmt.Sprintf("%.2fms", float64(us)/1000)
	default:
		return fmt.Sprintf("%.3fs", float64(us)/1_000_000)
	}
}
