package main

// HTTP-layer observability: request IDs, per-route metrics, request traces,
// and the /api/debug/traces view. The instrument middleware is the
// outermost layer of the chain so the request ID exists before anything
// can fail — panic bodies, timeout bodies, and every jsonError carry it.

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// ridKey is the context key for the request ID. The ID is carried
// separately from the trace because every request gets an ID (error
// correlation must survive sampling) while only sampled requests get a
// trace.
type ridKey struct{}

func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// requestIDFrom returns the request's ID, or "" outside the middleware
// (direct handler tests).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// knownRoutes is the closed label set for per-route metrics: URL paths are
// attacker-controlled, and an unbounded label set is a time-series leak
// (same reasoning as maxTrackedPaths). Unknown paths aggregate as
// "(other)".
var knownRoutes = map[string]bool{
	"/": true, "/ask": true, "/object": true,
	"/api/ask": true, "/api/query": true, "/api/batch": true,
	"/api/object": true, "/api/refresh": true, "/api/admin/checkpoint": true,
	"/api/watch": true, "/api/debug/traces": true,
	"/metrics": true, "/healthz": true, "/statsz": true,
}

func routeLabel(path string) string {
	if knownRoutes[path] {
		return path
	}
	return "(other)"
}

// untracedRoutes never start a request trace: scrapes and debug reads
// would otherwise fill the recent ring with their own noise, and the
// /api/watch stream lives as long as the connection, which is not an
// operation a trace usefully describes. Metrics still cover all of them.
var untracedRoutes = map[string]bool{
	"/metrics": true, "/api/debug/traces": true,
	"/healthz": true, "/statsz": true,
	"/api/watch": true,
}

// statusRecorder captures the response status for metrics and error logs.
// It forwards Flush so the SSE route keeps streaming through it (the
// underlying writer's Flusher is only reachable on the unwrapped /api/watch
// path; elsewhere http.TimeoutHandler already swallows it).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// instrument is the outermost middleware: mint the request ID, expose it
// as X-Request-ID, start the request trace (subject to sampling and the
// untraced-route exemption), and record the per-route duration histogram,
// response-class counter, and in-flight gauge. The op histograms observe
// every request unconditionally — their _count is the request count —
// while traces may be sampled.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := obs.NewRequestID()
		w.Header().Set("X-Request-ID", rid)
		route := routeLabel(r.URL.Path)
		ctx := withRequestID(r.Context(), rid)
		var tr *obs.Trace
		if !untracedRoutes[route] {
			tr = s.o.Tracer.StartID(rid, "http", r.Method+" "+r.URL.Path)
			ctx = obs.ContextWithTrace(ctx, tr)
		}
		s.o.M.HTTPInFlight.Add(1)
		rec := &statusRecorder{ResponseWriter: w}
		t0 := obs.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))
		d := obs.Since(t0)
		s.o.M.HTTPInFlight.Add(-1)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		s.o.M.HTTPDur.With(route).Observe(d)
		s.o.M.HTTPResp.With(route, statusClass(status)).Inc()
		if status >= 500 {
			s.logf("request %s %s %s -> %d (%v)", rid, r.Method, r.URL.Path, status, d)
		}
		if status >= 400 {
			tr.Annotate(http.StatusText(status))
		}
		tr.Finish()
	})
}

// timed wraps next in the per-request timeout. The http.TimeoutHandler is
// built per request so its 503 body can name the request ID minted by
// instrument — the one piece of the response that must survive the
// handler being abandoned mid-flight.
func (s *server) timed(next http.Handler, timeout time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Request IDs are hex-and-dash, so strconv.Quote is JSON-safe.
		body := `{"error":"request timed out","request_id":` +
			strconv.Quote(requestIDFrom(r.Context())) + `}`
		http.TimeoutHandler(next, timeout, body).ServeHTTP(w, r)
	})
}

// tracesResponse is the GET /api/debug/traces payload.
type tracesResponse struct {
	SlowThresholdMicros int64           `json:"slow_threshold_micros"`
	Recent              []obs.TraceView `json:"recent"`
	Slow                []obs.TraceView `json:"slow"`
}

// apiDebugTraces serves the recent- and slow-trace rings as JSON, newest
// first — the on-box answer to "what has this server been doing and where
// did the time go".
func (s *server) apiDebugTraces(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, tracesResponse{
		SlowThresholdMicros: s.o.Tracer.SlowThreshold().Microseconds(),
		Recent:              s.o.Tracer.Recent(),
		Slow:                s.o.Tracer.Slow(),
	})
}
