package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/warehouse"
)

// obsSystem builds a private System whose mediator shares an observability
// bundle with the mux, so /metrics carries the op and cache series next to
// the HTTP ones.
func obsSystem(t *testing.T) (*core.System, *obs.Obs) {
	t.Helper()
	o := obs.New(obs.Config{Logf: func(string, ...any) {}})
	cfg := datagen.Config{
		Seed: 779, Genes: 50, GoTerms: 30, Diseases: 20,
		ConflictRate: 0.2, MissingRate: 0.1,
	}
	sys, err := core.New(datagen.Generate(cfg), mediator.Options{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	return sys, o
}

// TestObsConcurrentScrape hammers queries, refreshes, /metrics scrapes, and
// /api/debug/traces reads concurrently (run under -race in CI), then checks
// the accounting invariant: the HTTP duration histogram's _count equals the
// number of requests served, and the op{query} histogram's _count equals
// the number of query calls — op histograms observe unconditionally,
// independent of trace sampling.
func TestObsConcurrentScrape(t *testing.T) {
	sys, _ := obsSystem(t)
	wh := warehouse.New(sys.Registry, sys.Global)
	h := newMux(sys, wh, 0)

	var total, queries atomic.Int64

	// Warm the snapshot so refreshes have an epoch to patch.
	warm := get(t, h, "/api/query?q="+url.QueryEscape(
		`select G from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease`))
	if warm.Code != http.StatusOK {
		t.Fatalf("warm query = %d: %s", warm.Code, warm.Body.String())
	}
	total.Add(1)
	queries.Add(1)

	const iters = 8
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}
	// Query workers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rec := get(t, h, "/api/query?q="+url.QueryEscape(`select G from ANNODA-GML.Gene G`))
				total.Add(1)
				queries.Add(1)
				if rec.Code != http.StatusOK {
					fail("query = %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	// Refresh worker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			rec := postJSON(t, h, "/api/refresh", `{"source":"GO"}`)
			total.Add(1)
			if rec.Code != http.StatusOK {
				fail("refresh = %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	}()
	// Metrics scraper: every scrape must parse as valid exposition even
	// mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			rec := get(t, h, "/metrics")
			total.Add(1)
			if rec.Code != http.StatusOK {
				fail("metrics = %d", rec.Code)
				return
			}
			if _, err := obs.ValidateExposition(rec.Body); err != nil {
				fail("scrape %d: %v", i, err)
				return
			}
		}
	}()
	// Trace reader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			rec := get(t, h, "/api/debug/traces")
			total.Add(1)
			if rec.Code != http.StatusOK {
				fail("traces = %d", rec.Code)
				return
			}
			var resp tracesResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				fail("traces decode: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Final serial scrape: the scrape's own histogram observation lands
	// after its response body is written, so the body reflects exactly the
	// requests completed before it.
	rec := get(t, h, "/metrics")
	exp, err := obs.ValidateExposition(rec.Body)
	if err != nil {
		t.Fatalf("final scrape: %v", err)
	}
	if got, want := exp.SumCount("annoda_http_request_duration_seconds_count"), float64(total.Load()); got != want {
		t.Errorf("http histogram count = %v, want %v (observed requests)", got, want)
	}
	if got, ok := exp.Value("annoda_op_duration_seconds_count", map[string]string{"op": "query"}); !ok || got != float64(queries.Load()) {
		t.Errorf("op{query} histogram count = %v (found=%v), want %v", got, ok, queries.Load())
	}
	if got, ok := exp.Value("annoda_op_duration_seconds_count", map[string]string{"op": "refresh"}); !ok || got != float64(iters) {
		t.Errorf("op{refresh} histogram count = %v (found=%v), want %v", got, ok, iters)
	}
}

// TestAskTraceRetrievable pins the acceptance contract: at default sampling
// every completed Ask shows up in /api/debug/traces, joinable by the
// X-Request-ID the response carried.
func TestAskTraceRetrievable(t *testing.T) {
	sys, _ := obsSystem(t)
	h := newMux(sys, nil, 0)

	rec := postJSON(t, h, "/api/ask", `{"include":["GO"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("ask = %d: %s", rec.Code, rec.Body.String())
	}
	rid := rec.Header().Get("X-Request-ID")
	if rid == "" {
		t.Fatal("ask response missing X-Request-ID")
	}

	tr := get(t, h, "/api/debug/traces")
	if tr.Code != http.StatusOK {
		t.Fatalf("traces = %d", tr.Code)
	}
	var resp tracesResponse
	if err := json.Unmarshal(tr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("traces decode: %v", err)
	}
	var found *obs.TraceView
	for i := range resp.Recent {
		if resp.Recent[i].ID == rid {
			found = &resp.Recent[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("trace %s not in recent ring (%d traces)", rid, len(resp.Recent))
	}
	if found.Op != "http" {
		t.Errorf("trace op = %q, want http", found.Op)
	}
	stages := map[string]bool{}
	for _, sp := range found.Spans {
		stages[sp.Stage] = true
	}
	if !stages[string(obs.StageFetch)] && !stages[string(obs.StageFuse)] {
		t.Errorf("ask trace has no fetch/fuse spans: %+v", found.Spans)
	}
}

// TestMetricsHandlerExposesMediatorSeries checks the scrape-time collector
// bridge: cache and snapshot counters owned by the mediator appear in the
// mux's /metrics output.
func TestMetricsHandlerExposesMediatorSeries(t *testing.T) {
	sys, _ := obsSystem(t)
	h := newMux(sys, nil, 0)

	if rec := get(t, h, "/api/query?q="+url.QueryEscape(`select G from ANNODA-GML.Gene G`)); rec.Code != http.StatusOK {
		t.Fatalf("query = %d: %s", rec.Code, rec.Body.String())
	}
	rec := get(t, h, "/metrics")
	exp, err := obs.ValidateExposition(rec.Body)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	for _, name := range []string{
		"annoda_cache_misses_total",
		"annoda_snapshot_misses_total",
		"annoda_http_request_duration_seconds_count",
		"annoda_op_duration_seconds_count",
	} {
		if n := exp.SumCount(name); n == 0 {
			t.Errorf("series %s absent or zero after a query", name)
		}
	}
}

// TestRequestIDCorrelation pins the error-correlation contract through the
// real middleware chain: a panicking handler's 500 body and a timed-out
// handler's 503 body both carry the same request ID the response header
// advertised, and both failures are logged with that ID.
func TestRequestIDCorrelation(t *testing.T) {
	var logMu sync.Mutex
	var logged []string
	s := &server{
		o: obs.New(obs.Config{}),
		logf: func(format string, args ...any) {
			logMu.Lock()
			logged = append(logged, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	}

	t.Run("panic", func(t *testing.T) {
		h := s.instrument(s.recovering(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
			panic("boom")
		})))
		rec := get(t, h, "/api/ask")
		rid := rec.Header().Get("X-Request-ID")
		if rec.Code != http.StatusInternalServerError || rid == "" {
			t.Fatalf("panicking handler = %d (rid %q), want 500 with a request ID", rec.Code, rid)
		}
		var body struct {
			Error     string `json:"error"`
			RequestID string `json:"request_id"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("500 body not JSON: %v (%s)", err, rec.Body.String())
		}
		if body.RequestID != rid {
			t.Errorf("500 body request_id = %q, header = %q", body.RequestID, rid)
		}
		logMu.Lock()
		defer logMu.Unlock()
		joined := strings.Join(logged, "\n")
		if !strings.Contains(joined, rid) {
			t.Errorf("panic log does not mention request ID %s:\n%s", rid, joined)
		}
	})

	t.Run("timeout", func(t *testing.T) {
		slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			<-r.Context().Done()
		})
		h := s.instrument(s.recovering(s.timed(slow, 20*time.Millisecond)))
		rec := get(t, h, "/api/query")
		rid := rec.Header().Get("X-Request-ID")
		if rec.Code != http.StatusServiceUnavailable || rid == "" {
			t.Fatalf("timed-out handler = %d (rid %q), want 503 with a request ID", rec.Code, rid)
		}
		var body struct {
			Error     string `json:"error"`
			RequestID string `json:"request_id"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("503 body not JSON: %v (%s)", err, rec.Body.String())
		}
		if body.RequestID != rid {
			t.Errorf("503 body request_id = %q, header = %q", body.RequestID, rid)
		}
	})
}
