package main

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/feed"
	"repro/internal/mediator"
)

// defaultWatchHeartbeat is how often /api/watch emits an SSE comment frame
// when no events are flowing, so proxies and clients can tell a quiet feed
// from a dead connection.
const defaultWatchHeartbeat = 15 * time.Second

// maxWatchBuffer caps the per-subscriber queue a client may request.
const maxWatchBuffer = 1024

// watchEventJSON is the SSE data payload for one feed event. Fingerprints
// travel as hex strings (JSON numbers lose precision past 2^53) and the
// optional gob summary as base64.
type watchEventJSON struct {
	Seq         uint64   `json:"seq"`
	Kind        string   `json:"kind"`
	Source      string   `json:"source,omitempty"`
	Concepts    []string `json:"concepts,omitempty"`
	Fingerprint string   `json:"fingerprint,omitempty"`
	Upserted    int      `json:"upserted,omitempty"`
	Deleted     int      `json:"deleted,omitempty"`
	Summary     string   `json:"summary,omitempty"`
	Lost        uint64   `json:"lost,omitempty"`
	Query       string   `json:"query,omitempty"`
	Answers     int      `json:"answers,omitempty"`
	Text        string   `json:"text,omitempty"`
	Initial     bool     `json:"initial,omitempty"`
}

func watchEvent(ev feed.Event) watchEventJSON {
	out := watchEventJSON{
		Seq:      ev.Seq,
		Kind:     ev.Kind.String(),
		Source:   ev.Source,
		Concepts: ev.Concepts,
		Upserted: ev.Upserted,
		Deleted:  ev.Deleted,
		Lost:     ev.Lost,
		Query:    ev.Query,
		Answers:  ev.Answers,
		Text:     ev.Text,
		Initial:  ev.Initial,
	}
	if ev.Fingerprint != 0 {
		out.Fingerprint = fmt.Sprintf("%016x", ev.Fingerprint)
	}
	if len(ev.Summary) > 0 {
		out.Summary = base64.StdEncoding.EncodeToString(ev.Summary)
	}
	return out
}

// writeSSEEvent frames one event as `id:`/`event:`/`data:` lines. The id is
// the feed sequence number, so Last-Event-ID resume maps straight onto
// feed.Options.AfterSeq.
func writeSSEEvent(w http.ResponseWriter, ev feed.Event) error {
	data, err := json.Marshal(watchEvent(ev))
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind.String(), data)
	return err
}

// apiWatch is GET /api/watch: a Server-Sent Events stream of change-feed
// notifications. Query parameters:
//
//	concepts  comma-separated concept filter (empty = all concepts)
//	query     Lorel source for a standing query evaluated on matching refreshes
//	summary   "1"/"true" to include the encoded ChangeSet in change events
//	buffer    per-subscriber queue length (default feed.DefaultBuffer)
//	after     resume: replay history after this sequence number
//
// A Last-Event-ID request header (the SSE reconnect convention) takes
// precedence over ?after. This route is deliberately NOT behind
// http.TimeoutHandler — see newMuxWatch.
func (s *server) apiWatch(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		jsonError(w, r, http.StatusInternalServerError, "streaming unsupported by this server configuration")
		return
	}

	opts := feed.Options{Buffer: feed.DefaultBuffer}
	if c := strings.TrimSpace(r.URL.Query().Get("concepts")); c != "" {
		for _, part := range strings.Split(c, ",") {
			if part = strings.TrimSpace(part); part != "" {
				opts.Concepts = append(opts.Concepts, part)
			}
		}
	}
	if b := r.URL.Query().Get("buffer"); b != "" {
		n, err := strconv.Atoi(b)
		if err != nil || n < 1 || n > maxWatchBuffer {
			jsonError(w, r, http.StatusBadRequest, "buffer must be an integer in [1,%d]", maxWatchBuffer)
			return
		}
		opts.Buffer = n
	}
	if v := r.URL.Query().Get("summary"); v == "1" || v == "true" {
		opts.Summary = true
	}
	after := r.Header.Get("Last-Event-ID")
	if after == "" {
		after = r.URL.Query().Get("after")
	}
	if after != "" {
		seq, err := strconv.ParseUint(after, 10, 64)
		if err != nil {
			jsonError(w, r, http.StatusBadRequest, "invalid resume sequence %q", after)
			return
		}
		opts.Resume = true
		opts.AfterSeq = seq
	}

	sub, err := s.sys.Manager.SubscribeChanges(opts)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, mediator.ErrFeedDisabled) {
			status = http.StatusConflict
		}
		jsonError(w, r, status, "watch: %v", err)
		return
	}
	defer sub.Close()

	var sq *mediator.StandingQuery
	if src := strings.TrimSpace(r.URL.Query().Get("query")); src != "" {
		sq, err = s.sys.Manager.AddStandingQuery(sub, src)
		if err != nil {
			jsonError(w, r, http.StatusBadRequest, "standing query: %v", err)
			return
		}
		defer sq.Cancel()
	}

	w.Header().Set("Content-Type", "text/event-stream; charset=utf-8")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": annoda change feed\n\n")
	flusher.Flush()

	ticker := time.NewTicker(s.heartbeat)
	defer ticker.Stop()
	ctx := r.Context()
	for {
		wrote := false
		for {
			ev, ok := sub.Next()
			if !ok {
				break
			}
			if err := writeSSEEvent(w, ev); err != nil {
				return
			}
			wrote = true
		}
		if wrote {
			flusher.Flush()
		}
		if sub.Closed() {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-sub.Notify():
		case <-ticker.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
