package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/warehouse"
)

// maxBodyBytes bounds every /api/* request body: annotation questions are
// small, and an unbounded body is a trivial memory DoS.
const maxBodyBytes = 1 << 20

// defaultRequestTimeout bounds one request's handler time; a mediated query
// over the demo corpus is milliseconds, so anything past this is a bug.
const defaultRequestTimeout = 30 * time.Second

// newMux builds the complete, middleware-wrapped handler tree for a running
// System. It is the testable seam: handler tests drive it through
// net/http/httptest without opening a socket. wh is the optional GUS-style
// warehouse whose refresh activity /statsz surfaces (nil disables it).
// timeout <= 0 selects defaultRequestTimeout.
func newMux(sys *core.System, wh *warehouse.Warehouse, timeout time.Duration) http.Handler {
	return newMuxCfg(sys, wh, muxConfig{timeout: timeout})
}

// newMuxWatch is newMux plus the change-feed heartbeat interval for
// /api/watch (<= 0 selects defaultWatchHeartbeat).
func newMuxWatch(sys *core.System, wh *warehouse.Warehouse, timeout, heartbeat time.Duration) http.Handler {
	return newMuxCfg(sys, wh, muxConfig{timeout: timeout, heartbeat: heartbeat})
}

// muxConfig bundles the handler-tree knobs main wires from flags.
type muxConfig struct {
	timeout   time.Duration // per-request deadline (<= 0: defaultRequestTimeout)
	heartbeat time.Duration // /api/watch SSE keep-alive (<= 0: defaultWatchHeartbeat)
	// readyStrict makes /readyz answer 503 for a degraded (but still
	// answering) mediator, for fleets that prefer ejecting a degraded
	// replica over serving partial annotation worlds.
	readyStrict bool
}

// The timeout wrap is route-aware: http.TimeoutHandler's buffered
// ResponseWriter deliberately drops http.Flusher, so wrapping a streaming
// route in it would stall every SSE event until the deadline killed the
// connection. /api/watch therefore hangs off the outer mux, unwrapped —
// its lifetime is bounded by the client disconnecting (request context)
// and its liveness by the heartbeat ticker — while every request/response
// route keeps the hard per-request deadline.
func newMuxCfg(sys *core.System, wh *warehouse.Warehouse, cfg muxConfig) http.Handler {
	timeout, heartbeat := cfg.timeout, cfg.heartbeat
	if timeout <= 0 {
		timeout = defaultRequestTimeout
	}
	if heartbeat <= 0 {
		heartbeat = defaultWatchHeartbeat
	}
	// Share the mediator's observability bundle so /metrics exposes the op,
	// cache, and persistence series next to the HTTP ones; a system built
	// without one still gets HTTP metrics and traces from a private bundle.
	o := sys.Manager.Obs()
	if o == nil {
		o = obs.New(obs.Config{Logf: log.Printf})
	}
	s := &server{sys: sys, wh: wh, o: o, start: obs.Now(), heartbeat: heartbeat, readyStrict: cfg.readyStrict, logf: log.Printf}

	mux := http.NewServeMux()
	// HTML views (Figures 5a/5b/5c).
	mux.HandleFunc("/", s.form)
	mux.HandleFunc("/ask", s.ask)
	mux.HandleFunc("/object", s.object)
	// JSON API.
	mux.HandleFunc("/api/ask", s.apiAsk)
	mux.HandleFunc("/api/query", s.apiQuery)
	mux.HandleFunc("/api/explain", s.apiExplain)
	mux.HandleFunc("/api/batch", s.apiBatch)
	mux.HandleFunc("/api/object", s.apiObject)
	mux.HandleFunc("/api/refresh", s.apiRefresh)
	mux.HandleFunc("/api/admin/checkpoint", s.apiCheckpoint)
	// Operational endpoints.
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/readyz", s.readyz)
	mux.HandleFunc("/statsz", s.statsz)
	mux.HandleFunc("/api/debug/traces", s.apiDebugTraces)
	mux.Handle("/metrics", o.Reg.Handler())

	outer := http.NewServeMux()
	outer.HandleFunc("/api/watch", s.apiWatch)
	outer.Handle("/", s.timed(mux, timeout))

	var h http.Handler = outer
	h = s.counting(h)
	h = s.recovering(h)
	h = s.instrument(h)
	return h
}

// maxTrackedPaths bounds the per-path counter map: r.URL.Path is
// attacker-controlled (404 scans hit this middleware before routing), so an
// unbounded map is a memory leak. Past the cap, new paths aggregate under
// "(other)".
const maxTrackedPaths = 32

// counting tracks per-path request counts for /statsz.
func (s *server) counting(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		path := r.URL.Path
		s.perPath.mu.Lock()
		if s.perPath.counts == nil {
			s.perPath.counts = map[string]int64{}
		}
		if _, tracked := s.perPath.counts[path]; !tracked && len(s.perPath.counts) >= maxTrackedPaths {
			path = "(other)"
		}
		s.perPath.counts[path]++
		s.perPath.mu.Unlock()
		next.ServeHTTP(w, r)
	})
}

// recovering converts a handler panic into a 500 instead of killing the
// connection (and, under http.Serve, leaking a broken keep-alive). The log
// line and the response body both carry the request ID so the two can be
// joined from either side.
func (s *server) recovering(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				rid := requestIDFrom(r.Context())
				s.logf("panic serving %s (request %s): %v\n%s", r.URL.Path, rid, rec, debug.Stack())
				jsonError(w, r, http.StatusInternalServerError, "internal server error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

type server struct {
	sys       *core.System
	wh        *warehouse.Warehouse // nil when no warehouse is attached
	o         *obs.Obs
	start     time.Time
	heartbeat time.Duration // /api/watch SSE keep-alive interval
	// readyStrict: /readyz answers 503 for a degraded mediator instead of
	// 200 + "degraded".
	readyStrict bool
	logf        func(format string, args ...any)
	requests    atomic.Int64
	perPath     struct {
		mu     sync.Mutex
		counts map[string]int64
	}
}

// allowMethods gates a handler on its supported HTTP methods, answering
// everything else with 405 + an Allow header instead of the implicit
// fall-through behaviour handlers used to have.
func allowMethods(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(methods, ", "))
	jsonError(w, r, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	return false
}

// ---------------------------------------------------------------------------
// JSON API
// ---------------------------------------------------------------------------

type conditionJSON struct {
	Field string `json:"field"`
	Op    string `json:"op"`
	Value string `json:"value"`
}

type askRequest struct {
	Include    []string        `json:"include"`
	Exclude    []string        `json:"exclude"`
	Combine    string          `json:"combine"` // "all" (default) or "any"
	Conditions []conditionJSON `json:"conditions"`
}

type rowJSON struct {
	GeneID   int64    `json:"gene_id"`
	Symbol   string   `json:"symbol"`
	Organism string   `json:"organism,omitempty"`
	Position string   `json:"position,omitempty"`
	GoIDs    []string `json:"go_ids,omitempty"`
	MimIDs   []int64  `json:"mim_ids,omitempty"`
	Proteins []string `json:"proteins,omitempty"`
	WebLinks []string `json:"web_links,omitempty"`
}

type cacheJSON struct {
	Hit       bool  `json:"hit"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Shared    int64 `json:"shared"`
	Evictions int64 `json:"evictions"`
	Expired   int64 `json:"expired"`
	Inval     int64 `json:"invalidations"`
	Entries   int   `json:"entries"`
	InFlight  int   `json:"in_flight"`
}

type statsJSON struct {
	SourcesQueried []string   `json:"sources_queried"`
	SourcesPruned  []string   `json:"sources_pruned,omitempty"`
	Conflicts      int        `json:"conflicts"`
	Pushdown       bool       `json:"pushdown"`
	PushdownFB     int        `json:"pushdown_fallbacks,omitempty"`
	Parallel       bool       `json:"parallel"`
	SnapshotUsed   bool       `json:"snapshot_used,omitempty"`
	BatchQuestions int        `json:"batch_questions,omitempty"`
	FetchMicros    int64      `json:"fetch_micros"`
	FuseMicros     int64      `json:"fuse_micros"`
	EvalMicros     int64      `json:"eval_micros"`
	Cache          *cacheJSON `json:"cache,omitempty"`
}

type askResponse struct {
	Question  string    `json:"question"`
	Rows      []rowJSON `json:"rows"`
	Conflicts int       `json:"conflicts"`
	Stats     statsJSON `json:"stats"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func jsonError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	body := map[string]string{"error": fmt.Sprintf(format, args...)}
	if rid := requestIDFrom(r.Context()); rid != "" {
		body["request_id"] = rid
	}
	writeJSON(w, status, body)
}

// mediatorStats converts mediator stats to the wire shape.
func mediatorStats(st *mediator.Stats) statsJSON {
	out := statsJSON{
		SourcesQueried: st.SourcesQueried,
		SourcesPruned:  st.SourcesPruned,
		Conflicts:      len(st.Conflicts),
		Pushdown:       st.PushdownUsed,
		PushdownFB:     st.PushdownFallbacks,
		Parallel:       st.Parallel,
		SnapshotUsed:   st.SnapshotUsed,
		BatchQuestions: st.BatchQuestions,
		FetchMicros:    st.FetchTime.Microseconds(),
		FuseMicros:     st.FuseTime.Microseconds(),
		EvalMicros:     st.EvalTime.Microseconds(),
	}
	if st.CacheEnabled {
		out.Cache = &cacheJSON{
			Hit:  st.CacheHit,
			Hits: st.Cache.Hits, Misses: st.Cache.Misses, Shared: st.Cache.Shared,
			Evictions: st.Cache.Evictions, Expired: st.Cache.Expired,
			Inval: st.Cache.Invalidations, Entries: st.Cache.Entries, InFlight: st.Cache.InFlight,
		}
	}
	return out
}

// apiAsk answers a Figure 5(a) biological question with the integrated view
// as JSON. POST takes an askRequest body; GET takes the HTML form's query
// parameters (t_<Source>=include|exclude, combine, field/op/value), so every
// form URL has a machine-readable twin under /api.
func (s *server) apiAsk(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	var q core.Question
	switch r.Method {
	case http.MethodPost:
		var req askRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			jsonError(w, r, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		q.Include = req.Include
		q.Exclude = req.Exclude
		switch strings.ToLower(req.Combine) {
		case "", "all":
			q.Combine = core.CombineAll
		case "any":
			q.Combine = core.CombineAny
		default:
			jsonError(w, r, http.StatusBadRequest, "combine must be \"all\" or \"any\", got %q", req.Combine)
			return
		}
		for _, c := range req.Conditions {
			q.Conditions = append(q.Conditions, core.Condition{Field: c.Field, Op: c.Op, Value: c.Value})
		}
	default: // GET
		q = s.questionFromForm(r)
	}
	view, stats, err := s.sys.AskCtx(r.Context(), q)
	if err != nil {
		jsonError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	resp := askResponse{
		Question:  view.Question,
		Rows:      make([]rowJSON, 0, len(view.Rows)),
		Conflicts: view.Conflicts,
		Stats:     mediatorStats(stats),
	}
	for _, row := range view.Rows {
		resp.Rows = append(resp.Rows, rowJSON{
			GeneID: row.GeneID, Symbol: row.Symbol, Organism: row.Organism,
			Position: row.Position, GoIDs: row.GoIDs, MimIDs: row.MimIDs,
			Proteins: row.Proteins, WebLinks: row.WebLinks,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

type queryRequest struct {
	Query string `json:"query"`
}

type queryResponse struct {
	Query   string    `json:"query"`
	Answers int       `json:"answers"`
	Text    string    `json:"text"`
	Stats   statsJSON `json:"stats"`
}

// apiQuery runs a raw Lorel query in the global vocabulary: GET ?q=... or
// POST {"query": "..."}.
func (s *server) apiQuery(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	var src string
	switch r.Method {
	case http.MethodPost:
		var req queryRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			jsonError(w, r, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		src = req.Query
	default: // GET
		src = r.FormValue("q")
	}
	if strings.TrimSpace(src) == "" {
		jsonError(w, r, http.StatusBadRequest, "missing query (POST {\"query\": ...} or GET ?q=...)")
		return
	}
	res, stats, err := s.sys.QueryCtx(r.Context(), src)
	if err != nil {
		jsonError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Query:   src,
		Answers: res.Size(),
		Text:    oem.TextString(res.Graph, "answer", res.Answer),
		Stats:   mediatorStats(stats),
	})
}

type explainRequest struct {
	Query   string `json:"query"`
	Analyze bool   `json:"analyze"`
}

type explainResponse struct {
	Explain *mediator.Explain `json:"explain"`
	Text    string            `json:"text"`
}

// apiExplain explains a Lorel query without guessing: POST {"query": "...",
// "analyze": bool}. The response carries the structured plan report (plan
// tree, per-source prune decisions, pushdown verdicts with reasons, the
// cache/snapshot path choice) and its rendered text form; analyze also
// executes the query and adds actual per-stage cardinalities and timings.
func (s *server) apiExplain(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodPost) {
		return
	}
	var req explainRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		jsonError(w, r, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		jsonError(w, r, http.StatusBadRequest, "missing query (POST {\"query\": ..., \"analyze\": bool})")
		return
	}
	e, err := s.sys.Manager.ExplainString(req.Query, req.Analyze)
	if err != nil {
		jsonError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, explainResponse{Explain: e, Text: e.Format()})
}

// maxBatchQueries bounds one /api/batch request: enough for THEA-style
// analysis sweeps, small enough that one request cannot monopolize the
// worker pool.
const maxBatchQueries = 256

type batchRequest struct {
	Queries []string `json:"queries"`
}

type batchAnswerJSON struct {
	Query        string `json:"query"`
	Answers      int    `json:"answers"`
	Text         string `json:"text,omitempty"`
	Error        string `json:"error,omitempty"`
	EvalMicros   int64  `json:"eval_micros,omitempty"`
	SnapshotUsed bool   `json:"snapshot_used,omitempty"`
}

type batchResponse struct {
	Questions int               `json:"questions"`
	Failed    int               `json:"failed"`
	Answers   []batchAnswerJSON `json:"answers"`
	Stats     statsJSON         `json:"stats"`
}

// apiBatch evaluates many Lorel queries as one batch: POST {"queries":
// [...]}. All snapshot-safe questions are answered concurrently against a
// single pinned snapshot epoch, so the whole batch sees one consistent
// annotation world; a malformed question fails only its own answer.
func (s *server) apiBatch(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodPost) {
		return
	}
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		jsonError(w, r, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		jsonError(w, r, http.StatusBadRequest, "missing queries (POST {\"queries\": [...]})")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		jsonError(w, r, http.StatusBadRequest, "batch too large: %d queries (limit %d)", len(req.Queries), maxBatchQueries)
		return
	}
	answers, stats, err := s.sys.QueryBatchCtx(r.Context(), req.Queries)
	if err != nil {
		jsonError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	resp := batchResponse{
		Questions: len(answers),
		Answers:   make([]batchAnswerJSON, 0, len(answers)),
		Stats:     mediatorStats(stats),
	}
	for _, a := range answers {
		aj := batchAnswerJSON{Query: a.Query}
		if a.Err != nil {
			aj.Error = a.Err.Error()
			resp.Failed++
		} else {
			aj.Answers = a.Result.Size()
			aj.Text = oem.TextString(a.Result.Graph, "answer", a.Result.Answer)
			aj.EvalMicros = a.Stats.EvalTime.Microseconds()
			aj.SnapshotUsed = a.Stats.SnapshotUsed
		}
		resp.Answers = append(resp.Answers, aj)
	}
	writeJSON(w, http.StatusOK, resp)
}

type objectResponse struct {
	URL  string `json:"url"`
	Text string `json:"text"`
}

// apiObject renders the Figure 5(c) individual-object view as JSON.
func (s *server) apiObject(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	url := r.FormValue("url")
	if url == "" {
		jsonError(w, r, http.StatusBadRequest, "missing url parameter")
		return
	}
	out, err := s.sys.ObjectView(url)
	if err != nil {
		jsonError(w, r, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, objectResponse{URL: url, Text: out})
}

type refreshRequest struct {
	Source string `json:"source"`
}

type refreshResponse struct {
	Source      string    `json:"source"`
	OldVersion  uint64    `json:"old_version"`
	NewVersion  uint64    `json:"new_version"`
	Upserted    int       `json:"upserted"`
	Deleted     int       `json:"deleted"`
	Total       int       `json:"total"`
	Native      bool      `json:"native,omitempty"`
	FullRebuild bool      `json:"full_rebuild,omitempty"`
	Reason      string    `json:"reason,omitempty"`
	Patched     bool      `json:"patched"`
	Invalidated int       `json:"invalidated"`
	TookMicros  int64     `json:"took_micros"`
	Delta       deltaJSON `json:"delta"`
	Warehouse   *whJSON   `json:"warehouse,omitempty"`
}

type deltaJSON struct {
	Applied         int64 `json:"applied"`
	EntitiesPatched int64 `json:"entities_patched"`
	FullRebuilds    int64 `json:"full_rebuilds"`
	SelectiveInval  int64 `json:"selective_invalidations"`
	EpochsPublished int64 `json:"epochs_published"`
	EpochPins       int64 `json:"epoch_pins"`
}

type whJSON struct {
	Loads    int      `json:"loads"`
	Archives []string `json:"archives"`
}

type persistJSON struct {
	Checkpoints       int64 `json:"checkpoints"`
	CheckpointBytes   int64 `json:"checkpoint_bytes"`
	WALAppended       int64 `json:"wal_appended"`
	WALReplayed       int64 `json:"wal_replayed"`
	Restores          int64 `json:"restores"`
	RestoreFallbacks  int64 `json:"restore_fallbacks"`
	Errors            int64 `json:"errors"`
	PruneFailures     int64 `json:"prune_failures"`
	LastRestoreMicros int64 `json:"last_restore_micros"`
}

func persistCountersJSON(pc mediator.PersistCounters) persistJSON {
	return persistJSON{
		Checkpoints:       pc.CheckpointsWritten,
		CheckpointBytes:   pc.CheckpointBytes,
		WALAppended:       pc.WALAppended,
		WALReplayed:       pc.WALReplayed,
		Restores:          pc.Restores,
		RestoreFallbacks:  pc.RestoreFallbacks,
		Errors:            pc.Errors,
		PruneFailures:     pc.PruneFailures,
		LastRestoreMicros: pc.LastRestore.Microseconds(),
	}
}

type checkpointResponse struct {
	Seq        uint64      `json:"seq"`
	Bytes      int         `json:"bytes"`
	TookMicros int64       `json:"took_micros"`
	Persist    persistJSON `json:"persist"`
}

// apiCheckpoint writes a durable snapshot checkpoint on demand: POST with
// an empty body. 409 when the server runs without -data-dir.
func (s *server) apiCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodPost) {
		return
	}
	if _, ok := s.sys.Manager.PersistCounters(); !ok {
		jsonError(w, r, http.StatusConflict, "persistence not enabled (start the server with -data-dir)")
		return
	}
	res, err := s.sys.Manager.SaveSnapshotCtx(r.Context())
	if err != nil {
		jsonError(w, r, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	pc, _ := s.sys.Manager.PersistCounters()
	writeJSON(w, http.StatusOK, checkpointResponse{
		Seq:        res.Seq,
		Bytes:      res.Bytes,
		TookMicros: res.Took.Microseconds(),
		Persist:    persistCountersJSON(pc),
	})
}

func deltaCountersJSON(dc mediator.DeltaCounters) deltaJSON {
	return deltaJSON{
		Applied:         dc.DeltasApplied,
		EntitiesPatched: dc.EntitiesPatched,
		FullRebuilds:    dc.FullRebuilds,
		SelectiveInval:  dc.SelectiveInvalidations,
		EpochsPublished: dc.EpochsPublished,
		EpochPins:       dc.EpochPins,
	}
}

// apiRefresh refreshes one annotation source through the delta subsystem
// and reports the applied ChangeSet: POST {"source": "GO"}. The special
// source "warehouse" runs the attached GUS-style warehouse's ETL instead
// (its load counter shows up in /statsz).
func (s *server) apiRefresh(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodPost) {
		return
	}
	var req refreshRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		jsonError(w, r, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Source == "" {
		jsonError(w, r, http.StatusBadRequest, "missing source (POST {\"source\": ...})")
		return
	}
	if req.Source == "warehouse" {
		if s.wh == nil {
			jsonError(w, r, http.StatusNotFound, "no warehouse attached")
			return
		}
		if err := s.wh.Refresh(); err != nil {
			jsonError(w, r, http.StatusInternalServerError, "warehouse refresh: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, refreshResponse{
			Source:    "warehouse",
			Delta:     deltaCountersJSON(s.sys.Manager.DeltaCounters()),
			Warehouse: &whJSON{Loads: s.wh.Loads(), Archives: s.wh.Archives()},
		})
		return
	}
	if s.sys.Registry.Get(req.Source) == nil {
		jsonError(w, r, http.StatusNotFound, "source %q not registered", req.Source)
		return
	}
	rr, err := s.sys.Manager.RefreshSourceCtx(r.Context(), req.Source)
	if err != nil {
		// The source exists; a failure here is a wrapper/model problem,
		// not a routing one.
		jsonError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	// The navigation index was built over the old models; re-resolve.
	if err := s.sys.Resolver.Reindex(); err != nil {
		jsonError(w, r, http.StatusInternalServerError, "reindex after refresh: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, refreshResponse{
		Source:      rr.Source,
		OldVersion:  rr.OldVersion,
		NewVersion:  rr.NewVersion,
		Upserted:    rr.Upserted,
		Deleted:     rr.Deleted,
		Total:       rr.Total,
		Native:      rr.Native,
		FullRebuild: rr.FullRebuild,
		Reason:      rr.Reason,
		Patched:     rr.Patched,
		Invalidated: rr.Invalidated,
		TookMicros:  rr.Took.Microseconds(),
		Delta:       deltaCountersJSON(s.sys.Manager.DeltaCounters()),
	})
}

// healthz is the liveness probe: the system is up and its sources resolve.
func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"sources": s.sys.Registry.Names(),
		"genes":   len(s.sys.Corpus.Genes),
	})
}

// readyz is the readiness probe, distinct from /healthz liveness: the body
// is the mediator's Readiness verdict (status + per-source breaker state).
// "ready" and — by default — "degraded" answer 200, because a degraded
// mediator is still answering from its healthy subset; "down" (a required
// source unavailable, or below the MinSources floor) answers 503. With
// -ready-strict, "degraded" answers 503 too, so a load balancer ejects
// replicas serving partial annotation worlds.
func (s *server) readyz(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	rd := s.sys.Manager.Readiness()
	status := http.StatusOK
	if rd.Status == "down" || (s.readyStrict && rd.Status != "ready") {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rd)
}

// statsz reports serving, cache, delta and warehouse counters.
func (s *server) statsz(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	byPath := map[string]int64{}
	s.perPath.mu.Lock()
	for p, n := range s.perPath.counts {
		byPath[p] = n
	}
	s.perPath.mu.Unlock()
	resp := map[string]any{
		"uptime_seconds":   int64(obs.Since(s.start).Seconds()),
		"requests_total":   s.requests.Load(),
		"requests_by_path": byPath,
	}
	if counters, ok := s.sys.Manager.CacheCounters(); ok {
		resp["cache"] = cacheJSON{
			Hits: counters.Hits, Misses: counters.Misses, Shared: counters.Shared,
			Evictions: counters.Evictions, Expired: counters.Expired,
			Inval: counters.Invalidations, Entries: counters.Entries, InFlight: counters.InFlight,
		}
	} else {
		resp["cache"] = nil
	}
	if pc, ok := s.sys.Manager.PlanCacheCounters(); ok {
		resp["plan_cache"] = cacheJSON{
			Hits: pc.Hits, Misses: pc.Misses, Shared: pc.Shared,
			Evictions: pc.Evictions, Expired: pc.Expired,
			Inval: pc.Invalidations, Entries: pc.Entries, InFlight: pc.InFlight,
		}
	} else {
		resp["plan_cache"] = nil
	}
	resp["explains_total"] = s.sys.Manager.ExplainCounters()
	// Per-source statistics table: entity counts, label cardinalities,
	// fetch EWMA and observed pushdown selectivities.
	resp["source_stats"] = s.sys.Manager.SourceStats()
	if sc, ok := s.sys.Manager.SnapshotCounters(); ok {
		resp["snapshot"] = map[string]int64{"hits": sc.Hits, "misses": sc.Misses}
	} else {
		resp["snapshot"] = nil
	}
	dc := s.sys.Manager.DeltaCounters()
	resp["epoch"] = map[string]int64{"published": dc.EpochsPublished, "pins": dc.EpochPins}
	resp["delta"] = deltaCountersJSON(dc)
	if pc, ok := s.sys.Manager.PersistCounters(); ok {
		resp["persist"] = persistCountersJSON(pc)
	} else {
		resp["persist"] = nil
	}
	if fc, ok := s.sys.Manager.FeedCounters(); ok {
		resp["feed"] = map[string]int64{
			"published": fc.Published, "delivered": fc.Delivered,
			"dropped": fc.Dropped, "overflows": fc.Overflows,
			"answers": fc.Answers, "subscribers": fc.Subscribers,
			"subscribed": fc.Subscribed,
		}
	} else {
		resp["feed"] = nil
	}
	if s.wh != nil {
		resp["warehouse"] = whJSON{Loads: s.wh.Loads(), Archives: s.wh.Archives()}
	} else {
		resp["warehouse"] = nil
	}
	rd := s.sys.Manager.Readiness()
	resp["health"] = map[string]any{
		"status":              rd.Status,
		"sources":             rd.Sources,
		"recovery_generation": s.sys.Manager.HealthGen(),
	}
	writeJSON(w, http.StatusOK, resp)
}

// questionFromForm decodes the HTML form's parameters into a Question —
// shared by the HTML /ask handler and GET /api/ask.
func (s *server) questionFromForm(r *http.Request) core.Question {
	var q core.Question
	for _, src := range s.sys.Registry.Names() {
		switch r.FormValue("t_" + src) {
		case "include":
			q.Include = append(q.Include, src)
		case "exclude":
			q.Exclude = append(q.Exclude, src)
		}
	}
	if r.FormValue("combine") == "any" {
		q.Combine = core.CombineAny
	}
	if f := r.FormValue("field"); f != "" && r.FormValue("value") != "" {
		q.Conditions = append(q.Conditions, core.Condition{
			Field: f, Op: r.FormValue("op"), Value: r.FormValue("value"),
		})
	}
	return q
}
