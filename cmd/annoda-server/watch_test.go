package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/mediator"
	"repro/internal/oem"
	"repro/internal/snapstore"
	"repro/internal/sources/geneontology"
	"repro/internal/sources/locuslink"
)

const watchTestQ = `select G from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease`

// sseStream reads one open /api/watch connection, parsing id/event/data
// frames and counting comment frames (the preamble and heartbeats).
type sseStream struct {
	resp     *http.Response
	r        *bufio.Reader
	cancel   context.CancelFunc
	comments int
}

type sseFrame struct {
	id    string
	event string
	data  watchEventJSON
}

// openWatch connects to base+"/api/watch"+params and returns the live
// stream after verifying the SSE response headers arrived (i.e. the
// handler flushed before producing any event).
func openWatch(t *testing.T, base, params, lastEventID string) *sseStream {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/watch"+params, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		defer cancel()
		t.Fatalf("GET /api/watch%s = %d", params, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	s := &sseStream{resp: resp, r: bufio.NewReader(resp.Body), cancel: cancel}
	t.Cleanup(s.close)
	return s
}

func (s *sseStream) close() {
	s.cancel()
	s.resp.Body.Close()
}

// next blocks until a complete event frame arrives, tallying any comment
// frames passed over along the way.
func (s *sseStream) next(t *testing.T) sseFrame {
	t.Helper()
	var f sseFrame
	var data string
	seen := false
	for {
		line, err := s.r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended while waiting for an event: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if seen {
				if err := json.Unmarshal([]byte(data), &f.data); err != nil {
					t.Fatalf("bad event payload %q: %v", data, err)
				}
				return f
			}
		case strings.HasPrefix(line, ":"):
			s.comments++
		case strings.HasPrefix(line, "id: "):
			f.id, seen = line[len("id: "):], true
		case strings.HasPrefix(line, "event: "):
			f.event, seen = line[len("event: "):], true
		case strings.HasPrefix(line, "data: "):
			data, seen = line[len("data: "):], true
		}
	}
}

// waitComments consumes the stream until n comment frames have been seen.
func (s *sseStream) waitComments(t *testing.T, n int) {
	t.Helper()
	for s.comments < n {
		line, err := s.r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended while waiting for heartbeats: %v", err)
		}
		if strings.HasPrefix(line, ":") {
			s.comments++
		}
	}
}

// warm materializes the fused snapshot so refreshes take the delta path.
func warm(t *testing.T, sys *core.System) {
	t.Helper()
	if _, _, err := sys.Manager.QueryString(watchTestQ); err != nil {
		t.Fatal(err)
	}
}

// refreshGO respells one annotated gene's GO organism, reloads the GO
// store in place (core.New parses each source once, so corpus edits alone
// are invisible to a refresh) and refreshes the GO source, guaranteeing a
// non-empty Annotation-concept delta. Everything runs on the test
// goroutine; the stream handler only sees the result through the hub's
// own synchronization.
func refreshGO(t *testing.T, sys *core.System, tag string) {
	t.Helper()
	c := sys.Corpus
	gi := -1
	for i := range c.Genes {
		if len(c.Genes[i].GoTerms) > 0 {
			gi = i
			break
		}
	}
	if gi < 0 {
		t.Fatal("corpus has no gene with GO terms")
	}
	c.Genes[gi].GOOrganism = "human (" + tag + ")"
	st, err := geneontology.Load(c)
	if err != nil {
		t.Fatal(err)
	}
	*sys.GO = *st
	rr, err := sys.Manager.RefreshSource("GO")
	if err != nil {
		t.Fatal(err)
	}
	if rr.Upserted+rr.Deleted == 0 {
		t.Fatalf("test premise broken: GO edit produced an empty delta (%+v)", rr)
	}
}

// TestWatchExemptFromTimeoutAndFlushes is the regression test for the
// route-aware timeout wrap: under the production middleware stack the SSE
// stream must (a) deliver bytes incrementally — headers, preamble and
// heartbeats arrive while the handler is still running — and (b) outlive
// the per-request timeout that governs every other route. Before the fix,
// http.TimeoutHandler's buffered ResponseWriter swallowed http.Flusher, so
// the stream delivered nothing and died at the deadline.
func TestWatchExemptFromTimeoutAndFlushes(t *testing.T) {
	sys := freshSystem(t)
	warm(t, sys)
	const timeout = 250 * time.Millisecond
	srv := httptest.NewServer(newMuxWatch(sys, nil, timeout, 20*time.Millisecond))
	t.Cleanup(srv.Close)

	start := time.Now()
	s := openWatch(t, srv.URL, "?concepts=Annotation", "")
	// 20 heartbeats at 20ms ≈ 400ms of live streaming, past the 250ms
	// deadline every buffered route would have hit.
	s.waitComments(t, 20)
	if lived := time.Since(start); lived <= timeout {
		t.Fatalf("read %d comment frames in %v; too fast to prove timeout exemption", s.comments, lived)
	}

	// The stream is still usable after outliving the deadline: a refresh
	// whose delta touches Annotation must arrive as a change event.
	refreshGO(t, sys, "exempt")
	f := s.next(t)
	if f.event != "change" || f.data.Kind != "change" {
		t.Fatalf("event = %q / %+v, want a change", f.event, f.data)
	}
	if len(f.data.Concepts) != 1 || f.data.Concepts[0] != "Annotation" {
		t.Errorf("change concepts = %v, want [Annotation]", f.data.Concepts)
	}
	if f.data.Seq == 0 || f.id == "" {
		t.Errorf("change event missing sequence: id=%q seq=%d", f.id, f.data.Seq)
	}

	// A plain request/response route under the same mux still enforces the
	// deadline (the exemption is /api/watch only).
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
}

// TestWatchResume: reconnecting with Last-Event-ID (or ?after=) replays
// the missed events from the hub's history ring in order.
func TestWatchResume(t *testing.T) {
	sys := freshSystem(t)
	warm(t, sys)
	srv := httptest.NewServer(newMuxWatch(sys, nil, 0, time.Hour))
	t.Cleanup(srv.Close)

	var seqs []uint64
	for i := 0; i < 2; i++ {
		refreshGO(t, sys, "resume-"+strconv.Itoa(i))
		seqs = append(seqs, sys.Manager.FeedSeq())
	}
	if seqs[0] == 0 || seqs[1] <= seqs[0] {
		t.Fatalf("feed sequence did not advance: %v", seqs)
	}

	s := openWatch(t, srv.URL, "?after=0", "")
	for i, want := range seqs {
		f := s.next(t)
		if f.event != "change" || f.data.Seq != want {
			t.Fatalf("replayed event %d = %q seq %d, want change seq %d", i, f.event, f.data.Seq, want)
		}
	}
	s.close()

	// Last-Event-ID takes over from ?after: only events past it replay.
	s2 := openWatch(t, srv.URL, "", strconv.FormatUint(seqs[0], 10))
	f := s2.next(t)
	if f.data.Seq != seqs[1] {
		t.Fatalf("Last-Event-ID resume replayed seq %d, want %d", f.data.Seq, seqs[1])
	}
}

// TestWatchStandingQuerySSE: a ?query= subscription pushes the baseline
// answer immediately, then a fresh answer — byte-equal to re-running the
// query — only when a refresh actually changes it.
func TestWatchStandingQuerySSE(t *testing.T) {
	sys := freshSystem(t)
	warm(t, sys)
	srv := httptest.NewServer(newMuxWatch(sys, nil, 0, time.Hour))
	t.Cleanup(srv.Close)

	freshText := func() string {
		res, _, err := sys.Manager.QueryString(watchTestQ)
		if err != nil {
			t.Fatal(err)
		}
		return oem.CanonicalText(res.Graph, "answer", res.Answer)
	}

	// NoSuchConcept filters out broadcast change events; answers bypass
	// the filter, so the stream carries only this query's pushes.
	s := openWatch(t, srv.URL, "?concepts=NoSuchConcept&query="+url.QueryEscape(watchTestQ), "")
	base := s.next(t)
	if base.event != "answer" || !base.data.Initial {
		t.Fatalf("baseline frame = %q / %+v, want an initial answer", base.event, base.data)
	}
	if base.data.Text != freshText() {
		t.Fatal("baseline answer diverges from a fresh query")
	}

	// An answer-changing edit: respell the description of a gene in the
	// answer set (annotated, disease-free, description survives fusion).
	c := sys.Corpus
	diseased := map[int]bool{}
	for _, d := range c.Diseases {
		for _, l := range d.Loci {
			diseased[l] = true
		}
	}
	gi := -1
	for i := range c.Genes {
		if len(c.Genes[i].GoTerms) > 0 && !diseased[c.Genes[i].LocusID] && !c.Genes[i].LLMissingDesc {
			gi = i
			break
		}
	}
	if gi < 0 {
		t.Fatal("corpus has no annotated, disease-free gene")
	}
	c.Genes[gi].Description = "sse standing-query edit"
	db, err := locuslink.Load(c)
	if err != nil {
		t.Fatal(err)
	}
	*sys.LocusLink = *db
	if _, err := sys.Manager.RefreshSource("LocusLink"); err != nil {
		t.Fatal(err)
	}
	want := freshText()
	if want == base.data.Text {
		t.Fatal("test premise broken: the edit did not change the answer")
	}
	f := s.next(t)
	if f.event != "answer" || f.data.Initial {
		t.Fatalf("pushed frame = %q / %+v, want a non-initial answer", f.event, f.data)
	}
	if f.data.Text != want {
		t.Error("pushed answer is not byte-equal to a fresh query on the post-refresh epoch")
	}
	if f.data.Query == "" {
		t.Error("answer event does not echo the canonical query")
	}
}

// TestWatchBadRequests: every rejection happens before the SSE headers,
// as a plain JSON error.
func TestWatchBadRequests(t *testing.T) {
	h := newMuxWatch(freshSystem(t), nil, 0, time.Hour)
	cases := []struct {
		target string
		want   int
	}{
		{"/api/watch?query=select+G+from", http.StatusBadRequest},
		{"/api/watch?query=" + url.QueryEscape(`select G from ANNODA-GML.Gene G where G.Symbol = "Z"`), http.StatusBadRequest},
		{"/api/watch?after=notanumber", http.StatusBadRequest},
		{"/api/watch?buffer=0", http.StatusBadRequest},
		{"/api/watch?buffer=99999", http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec := get(t, h, tc.target)
		if rec.Code != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.target, rec.Code, tc.want)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
			t.Errorf("GET %s Content-Type = %q, want a JSON error", tc.target, ct)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/watch", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /api/watch = %d, want 405", rec.Code)
	}

	// A cache-disabled system has no epochs and therefore no feed: 409.
	cfg := datagen.Config{Seed: 779, Genes: 30, GoTerms: 20, Diseases: 10}
	sysNC, err := core.New(datagen.Generate(cfg), mediator.Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	hNC := newMuxWatch(sysNC, nil, 0, time.Hour)
	if rec := get(t, hNC, "/api/watch"); rec.Code != http.StatusConflict {
		t.Errorf("watch on cache-disabled server = %d, want 409", rec.Code)
	}
}

// TestStatszFeedAndPruneCounters: /statsz surfaces the feed counters and,
// with persistence enabled, the prune-failure counter.
func TestStatszFeedAndPruneCounters(t *testing.T) {
	sys := freshSystem(t)
	st, err := snapstore.Open(t.TempDir(), snapstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Manager.EnablePersistence(st, mediator.PersistPolicy{}); err != nil {
		t.Fatal(err)
	}
	warm(t, sys)
	h := newMuxWatch(sys, nil, 0, time.Hour)
	rec := get(t, h, "/statsz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /statsz = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{`"feed"`, `"published"`, `"subscribers"`, `"prune_failures"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/statsz missing %s", want)
		}
	}
}
