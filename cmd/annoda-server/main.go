// Command annoda-server serves ANNODA's three Figure 5 views over HTTP:
//
//	/            the query interface (Figure 5(a))
//	/ask         the annotation integrated view (Figure 5(b))
//	/object?url= the individual object view (Figure 5(c))
//
// Start it and open http://localhost:8077/ — submitting the default form
// reproduces the paper's running example.
package main

import (
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/mediator"
)

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>ANNODA</title><style>
body{font-family:sans-serif;margin:2em;background:#f4f6f8}
table{border-collapse:collapse}td,th{border:1px solid #aab;padding:4px 8px;font-size:13px}
th{background:#dde4ee}.box{background:#fff;border:1px solid #ccd;padding:1em;margin-bottom:1em}
code{background:#eef}a{color:#225}</style></head><body>
<h1>ANNODA &mdash; integrating molecular-biological annotation data</h1>
{{.Body}}
</body></html>`))

type server struct {
	sys *core.System
}

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	genes := flag.Int("genes", 1000, "corpus size")
	flag.Parse()
	cfg := datagen.DefaultConfig()
	cfg.Genes = *genes
	sys, err := core.New(datagen.Generate(cfg), mediator.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.PlugInProteins(); err != nil {
		log.Fatal(err)
	}
	s := &server{sys: sys}
	http.HandleFunc("/", s.form)
	http.HandleFunc("/ask", s.ask)
	http.HandleFunc("/object", s.object)
	log.Printf("annoda-server listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, nil))
}

func (s *server) render(w http.ResponseWriter, body template.HTML) {
	if err := pageTmpl.Execute(w, struct{ Body template.HTML }{body}); err != nil {
		log.Print(err)
	}
}

// form is the Figure 5(a) query interface: include/exclude targets,
// combination method, search conditions.
func (s *server) form(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	b.WriteString(`<div class="box"><h2>Query interface (Figure 5a)</h2>
<form action="/ask" method="GET"><table>
<tr><th>Source</th><th>Include</th><th>Exclude</th><th>Ignore</th></tr>`)
	for _, src := range s.sys.Registry.Names() {
		if src == "LocusLink" {
			continue // the gene population itself
		}
		fmt.Fprintf(&b, `<tr><td>%s</td>
<td><input type="radio" name="t_%s" value="include"%s></td>
<td><input type="radio" name="t_%s" value="exclude"%s></td>
<td><input type="radio" name="t_%s" value="ignore"%s></td></tr>`,
			src, src, check(src == "GO"), src, check(src == "OMIM"), src, check(src != "GO" && src != "OMIM"))
	}
	b.WriteString(`</table>
<p>Combine included targets:
<select name="combine"><option value="all">all of them (AND)</option>
<option value="any">any of them (OR)</option></select></p>
<p>Condition: G.<input name="field" size="12" placeholder="Organism">
<select name="op"><option>=</option><option>!=</option><option>like</option></select>
<input name="value" size="20" placeholder="Homo sapiens"></p>
<p><input type="submit" value="Run biological question"></p></form>
<p>The defaults reproduce the paper&rsquo;s example: genes annotated with
some GO function but not associated with an OMIM disease.</p></div>`)
	s.render(w, template.HTML(b.String()))
}

func check(b bool) string {
	if b {
		return ` checked`
	}
	return ""
}

// ask renders the Figure 5(b) integrated view.
func (s *server) ask(w http.ResponseWriter, r *http.Request) {
	var q core.Question
	for _, src := range s.sys.Registry.Names() {
		switch r.FormValue("t_" + src) {
		case "include":
			q.Include = append(q.Include, src)
		case "exclude":
			q.Exclude = append(q.Exclude, src)
		}
	}
	if r.FormValue("combine") == "any" {
		q.Combine = core.CombineAny
	}
	if f := r.FormValue("field"); f != "" && r.FormValue("value") != "" {
		q.Conditions = append(q.Conditions, core.Condition{
			Field: f, Op: r.FormValue("op"), Value: r.FormValue("value"),
		})
	}
	view, stats, err := s.sys.Ask(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<div class="box"><h2>Annotation integrated view (Figure 5b)</h2>
<p>Lorel: <code>%s</code></p><table>
<tr><th>Symbol</th><th>GeneID</th><th>Organism</th><th>Position</th><th>GO</th><th>OMIM</th><th>Proteins</th><th>Links</th></tr>`,
		template.HTMLEscapeString(view.Question))
	for _, row := range view.Rows {
		var links []string
		for _, u := range row.WebLinks {
			links = append(links, fmt.Sprintf(`<a href="/object?url=%s">%s</a>`,
				template.URLQueryEscaper(u), template.HTMLEscapeString(shortURL(u))))
		}
		var mims []string
		for _, m := range row.MimIDs {
			mims = append(mims, fmt.Sprintf("%d", m))
		}
		fmt.Fprintf(&b, `<tr><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>`,
			template.HTMLEscapeString(row.Symbol), row.GeneID,
			template.HTMLEscapeString(row.Organism), template.HTMLEscapeString(row.Position),
			template.HTMLEscapeString(strings.Join(row.GoIDs, ", ")),
			strings.Join(mims, ", "),
			template.HTMLEscapeString(strings.Join(row.Proteins, ", ")),
			strings.Join(links, " "))
	}
	fmt.Fprintf(&b, `</table><p>%d genes; %d conflicts reconciled.</p><pre>%s</pre>
<p><a href="/">back to the query interface</a></p></div>`,
		len(view.Rows), view.Conflicts, template.HTMLEscapeString(stats.String()))
	s.render(w, template.HTML(b.String()))
}

func shortURL(u string) string {
	u = strings.TrimPrefix(u, "http://")
	if len(u) > 40 {
		u = u[:37] + "..."
	}
	return u
}

// object renders the Figure 5(c) individual object view.
func (s *server) object(w http.ResponseWriter, r *http.Request) {
	url := r.FormValue("url")
	out, err := s.sys.ObjectView(url)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<div class="box"><h2>Individual object view (Figure 5c)</h2>
<p><code>%s</code></p><pre>`, template.HTMLEscapeString(url))
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "link ") {
			u := strings.TrimSpace(strings.TrimPrefix(trimmed, "link"))
			fmt.Fprintf(&b, `  link           <a href="/object?url=%s">%s</a>`+"\n",
				template.URLQueryEscaper(u), template.HTMLEscapeString(u))
			continue
		}
		b.WriteString(template.HTMLEscapeString(line) + "\n")
	}
	b.WriteString(`</pre><p><a href="/">back to the query interface</a></p></div>`)
	s.render(w, template.HTML(b.String()))
}
