// Command annoda-server serves ANNODA's three Figure 5 views over HTTP,
// plus a JSON API and operational endpoints:
//
//	/            the query interface (Figure 5(a))
//	/ask         the annotation integrated view (Figure 5(b))
//	/object?url= the individual object view (Figure 5(c))
//	/api/ask     the integrated view as JSON (POST body or form params)
//	/api/query   raw Lorel queries as JSON
//	/api/explain POST {"query": ..., "analyze": bool}: the query plan —
//	             plan tree, per-source prune decisions, pushdown verdicts
//	             with reasons, cache/snapshot path — plus, with analyze,
//	             actual per-stage cardinalities and timings (-cost-pushdown
//	             makes the selectivity cost model the live pushdown gate)
//	/api/batch   many Lorel queries evaluated concurrently against one
//	             pinned snapshot epoch (POST {"queries": [...]})
//	/api/object  the object view as JSON
//	/api/refresh POST {"source": ...}: refresh one source via the delta
//	             subsystem (or "warehouse" for the GUS-style ETL)
//	/api/admin/checkpoint  POST: write a durable snapshot checkpoint now
//	             (requires -data-dir)
//	/api/watch   GET: Server-Sent Events stream of change-feed notifications
//	             (?concepts=, ?query= for standing queries, ?summary=1,
//	             Last-Event-ID resume); exempt from the request timeout
//	/api/debug/traces  GET: recent and slow request traces as JSON, newest
//	             first (`annoda traces` renders them)
//	/metrics     Prometheus text exposition: op/stage/HTTP latency
//	             histograms plus cache, epoch, WAL, checkpoint and feed
//	             counters
//	/healthz     liveness probe
//	/readyz      readiness probe: "ready"/"degraded" answer 200 (degraded
//	             replicas still serve the healthy subset), "down" answers
//	             503; -ready-strict turns degraded into 503 too
//	/statsz      request, cache, plan-cache, delta, persistence, warehouse,
//	             per-source health counters and the per-source statistics
//	             table (entities, label cardinalities, fetch EWMA, observed
//	             pushdown selectivities)
//
// Every response carries an X-Request-ID header; error bodies, panic logs
// and timeout bodies repeat the ID so a client-side failure can be joined
// to the server-side trace (-trace-sample, -trace-ring, -slow-query tune
// the tracer).
//
// Every request runs under a timeout and panic recovery; repeated questions
// are answered from the mediator's sharded result cache (disable with
// -nocache). The server drains in-flight requests on SIGINT/SIGTERM.
//
// -pprof ADDR serves net/http/pprof on a separate mux at ADDR (e.g.
// "localhost:6060") so lock-contention and CPU claims about the serving
// path are profileable in production without exposing the profiler on the
// public listener. Off by default.
//
// Source fault tolerance (see DESIGN.md "Fault tolerance"): every source
// fetch runs under a circuit breaker with bounded retries (-source-timeout,
// -source-retries, -breaker-threshold, -breaker-backoff,
// -breaker-backoff-max). With -min-sources N > 0 the mediator keeps
// answering from the healthy subset when sources fail — answers and /statsz
// report the missing sources — while -require-sources lists sources whose
// failure must stay fatal. -health-probe INTERVAL starts a background loop
// that probes unhealthy sources and folds recovered ones back into the
// serving world.
//
// -data-dir DIR enables the durable snapshot store: on boot the server
// restores the fused annotation world from the newest valid checkpoint
// (replaying its delta WAL) instead of fetching and fusing every source;
// while serving, each incremental refresh is appended to the WAL and
// folded into a fresh checkpoint per the auto-checkpoint policy; on
// graceful shutdown a final checkpoint is flushed. See DESIGN.md
// "Persistence".
//
// Start it and open http://localhost:8077/ — submitting the default form
// reproduces the paper's running example.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/health"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/snapstore"
	"repro/internal/warehouse"
)

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>ANNODA</title><style>
body{font-family:sans-serif;margin:2em;background:#f4f6f8}
table{border-collapse:collapse}td,th{border:1px solid #aab;padding:4px 8px;font-size:13px}
th{background:#dde4ee}.box{background:#fff;border:1px solid #ccd;padding:1em;margin-bottom:1em}
code{background:#eef}a{color:#225}</style></head><body>
<h1>ANNODA &mdash; integrating molecular-biological annotation data</h1>
{{.Body}}
</body></html>`))

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	genes := flag.Int("genes", 1000, "corpus size")
	reqTimeout := flag.Duration("timeout", defaultRequestTimeout, "per-request timeout")
	cacheSize := flag.Int("cache-size", 0, "result cache capacity in entries (0 = default)")
	cacheTTL := flag.Duration("cache-ttl", 0, "result cache TTL (0 = no expiry)")
	noCache := flag.Bool("nocache", false, "disable the result cache")
	costPushdown := flag.Bool("cost-pushdown", false, "gate predicate pushdown on the observed-selectivity cost model instead of the heuristic alone")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	dataDir := flag.String("data-dir", "", "durable snapshot store directory: restore-on-boot, per-refresh WAL, checkpoint on shutdown (empty = memory only)")
	ckptEvery := flag.Int("checkpoint-every", 0, "auto-checkpoint after this many WAL records (0 = default)")
	fsyncWAL := flag.Bool("fsync-wal", false, "fsync the delta WAL on every append (durable refreshes at the cost of append latency)")
	watchHeartbeat := flag.Duration("watch-heartbeat", defaultWatchHeartbeat, "/api/watch SSE keep-alive interval")
	traceSample := flag.Int("trace-sample", 1, "trace 1 in N requests (1 = every request, the default)")
	traceRing := flag.Int("trace-ring", 0, "recent-trace ring capacity (0 = default)")
	slowQuery := flag.Duration("slow-query", 0, "slow-query log threshold (0 = default)")
	srcTimeout := flag.Duration("source-timeout", 0, "per-attempt source fetch deadline (0 = none)")
	srcRetries := flag.Int("source-retries", 0, "in-fetch retries before a source failure is charged to its breaker")
	brThreshold := flag.Int("breaker-threshold", 0, "consecutive failures before a source's breaker opens (0 = default)")
	brBackoff := flag.Duration("breaker-backoff", 0, "initial breaker backoff window (0 = default)")
	brBackoffMax := flag.Duration("breaker-backoff-max", 0, "breaker backoff window cap (0 = default)")
	healthProbe := flag.Duration("health-probe", 0, "probe unhealthy sources at this interval and re-admit recovered ones (0 = disabled)")
	minSources := flag.Int("min-sources", 0, "answer from the healthy subset while at least this many sources survive (0 = strict: any source failure fails the query)")
	requireSources := flag.String("require-sources", "", "comma-separated sources whose failure is always fatal, even in degraded mode")
	readyStrict := flag.Bool("ready-strict", false, "/readyz answers 503 when degraded instead of 200")
	flag.Parse()

	if *pprofAddr != "" {
		// Contention profiles sample nothing until their rates are set;
		// without these the mutex/block endpoints would always be empty.
		runtime.SetMutexProfileFraction(100) // sample 1% of contended mutex events
		runtime.SetBlockProfileRate(int(time.Millisecond))
		go func() {
			log.Printf("pprof listening on %s (mutex/block profiling via /debug/pprof/)", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pprofMux()); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	cfg := datagen.DefaultConfig()
	cfg.Genes = *genes
	var required []string
	for _, s := range strings.Split(*requireSources, ",") {
		if s = strings.TrimSpace(s); s != "" {
			required = append(required, s)
		}
	}
	sys, err := core.New(datagen.Generate(cfg), mediator.Options{
		CacheSize:      *cacheSize,
		CacheTTL:       *cacheTTL,
		DisableCache:   *noCache,
		CostPushdown:   *costPushdown,
		FetchTimeout:   *srcTimeout,
		FetchRetries:   *srcRetries,
		MinSources:     *minSources,
		RequireSources: required,
		Health: health.Config{
			FailureThreshold: *brThreshold,
			BaseBackoff:      *brBackoff,
			MaxBackoff:       *brBackoffMax,
		},
		Obs: obs.New(obs.Config{
			SampleEvery:   *traceSample,
			RingSize:      *traceRing,
			SlowThreshold: *slowQuery,
			Logf:          log.Printf,
		}),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.PlugInProteins(); err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		st, err := snapstore.Open(*dataDir, snapstore.Options{Sync: *fsyncWAL})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Manager.EnablePersistence(st, mediator.PersistPolicy{EveryRecords: *ckptEvery}); err != nil {
			log.Fatal(err)
		}
		rr, err := sys.Manager.LoadSnapshot()
		switch {
		case err != nil:
			// The store is unusable (I/O, permissions); serve cold rather
			// than refuse to start — persistence is an accelerator, not a
			// dependency.
			log.Printf("snapshot restore failed (%v); serving cold", err)
		case rr.Restored:
			log.Printf("restored snapshot seq %d from %s: %d objects, %d genes, %d WAL records replayed in %v (%d ladder fallbacks)",
				rr.Seq, *dataDir, rr.Objects, rr.Genes, rr.WALReplayed, rr.Took.Round(time.Millisecond), rr.Fallbacks)
			if rr.WALTruncated {
				log.Printf("WARNING: the restored WAL had a torn or corrupt tail; refreshes after the last valid record were dropped")
			}
		default:
			log.Printf("no restorable snapshot in %s (%s); cold start", *dataDir, rr.Reason)
		}
	}
	// The GUS-style warehouse rides along for the architecture comparison:
	// POST /api/refresh {"source":"warehouse"} runs its ETL, and /statsz
	// surfaces its load count and archives next to the mediator stats.
	wh := warehouse.New(sys.Registry, sys.Global)

	srv := &http.Server{
		Addr: *addr,
		Handler: newMuxCfg(sys, wh, muxConfig{
			timeout:     *reqTimeout,
			heartbeat:   *watchHeartbeat,
			readyStrict: *readyStrict,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, drain in-flight
	// requests, then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *healthProbe > 0 {
		go probeLoop(ctx, sys.Manager, *healthProbe)
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("annoda-server listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Print("shutting down; draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		// Final flush: fold anything the store does not yet reflect into a
		// checkpoint, so the next boot warm-starts from the exact world
		// this process was serving. A clean store is a no-op.
		if res, saved, err := sys.Manager.FlushSnapshot(); err != nil {
			log.Printf("final snapshot flush: %v", err)
		} else if saved {
			log.Printf("final snapshot flushed: seq %d, %d bytes in %v", res.Seq, res.Bytes, res.Took.Round(time.Millisecond))
		}
	}
}

// probeLoop periodically probes every source that is not fully serving
// (breaker open/degraded, or missing from the fused epoch) and lets the
// mediator re-admit the ones that answer. A *health.DownError just means
// the breaker's backoff window has not elapsed — silent, by design: the
// loop ticks much faster than an outage resolves, and logging every
// refused probe would drown the log. Real probe failures and recoveries
// are both worth a line.
func probeLoop(ctx context.Context, m *mediator.Manager, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, sh := range m.SourceHealth() {
			if sh.StateCode == int(health.StateHealthy) && !sh.MissingFromEpoch {
				continue
			}
			pctx, cancel := context.WithTimeout(ctx, every)
			err := m.ProbeSource(pctx, sh.Source)
			cancel()
			var down *health.DownError
			switch {
			case err == nil:
				log.Printf("source %s recovered; re-admitted to the serving world", sh.Source)
			case errors.As(err, &down):
				// Breaker still cooling off; try again next tick.
			default:
				log.Printf("source %s probe failed: %v", sh.Source, err)
			}
		}
	}
}

// pprofMux builds the profiler handler tree on its own mux: the handlers
// are registered explicitly instead of importing net/http/pprof for its
// DefaultServeMux side effect, so the main listener never exposes them.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *server) render(w http.ResponseWriter, body template.HTML) {
	if err := pageTmpl.Execute(w, struct{ Body template.HTML }{body}); err != nil {
		log.Print(err)
	}
}

// form is the Figure 5(a) query interface: include/exclude targets,
// combination method, search conditions.
func (s *server) form(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	var b strings.Builder
	b.WriteString(`<div class="box"><h2>Query interface (Figure 5a)</h2>
<form action="/ask" method="GET"><table>
<tr><th>Source</th><th>Include</th><th>Exclude</th><th>Ignore</th></tr>`)
	for _, src := range s.sys.Registry.Names() {
		if src == "LocusLink" {
			continue // the gene population itself
		}
		fmt.Fprintf(&b, `<tr><td>%s</td>
<td><input type="radio" name="t_%s" value="include"%s></td>
<td><input type="radio" name="t_%s" value="exclude"%s></td>
<td><input type="radio" name="t_%s" value="ignore"%s></td></tr>`,
			src, src, check(src == "GO"), src, check(src == "OMIM"), src, check(src != "GO" && src != "OMIM"))
	}
	b.WriteString(`</table>
<p>Combine included targets:
<select name="combine"><option value="all">all of them (AND)</option>
<option value="any">any of them (OR)</option></select></p>
<p>Condition: G.<input name="field" size="12" placeholder="Organism">
<select name="op"><option>=</option><option>!=</option><option>like</option></select>
<input name="value" size="20" placeholder="Homo sapiens"></p>
<p><input type="submit" value="Run biological question"></p></form>
<p>The defaults reproduce the paper&rsquo;s example: genes annotated with
some GO function but not associated with an OMIM disease.</p></div>`)
	s.render(w, template.HTML(b.String()))
}

func check(b bool) string {
	if b {
		return ` checked`
	}
	return ""
}

// ask renders the Figure 5(b) integrated view.
func (s *server) ask(w http.ResponseWriter, r *http.Request) {
	q := s.questionFromForm(r)
	view, stats, err := s.sys.AskCtx(r.Context(), q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<div class="box"><h2>Annotation integrated view (Figure 5b)</h2>
<p>Lorel: <code>%s</code></p><table>
<tr><th>Symbol</th><th>GeneID</th><th>Organism</th><th>Position</th><th>GO</th><th>OMIM</th><th>Proteins</th><th>Links</th></tr>`,
		template.HTMLEscapeString(view.Question))
	for _, row := range view.Rows {
		var links []string
		for _, u := range row.WebLinks {
			links = append(links, fmt.Sprintf(`<a href="/object?url=%s">%s</a>`,
				template.URLQueryEscaper(u), template.HTMLEscapeString(shortURL(u))))
		}
		var mims []string
		for _, m := range row.MimIDs {
			mims = append(mims, fmt.Sprintf("%d", m))
		}
		fmt.Fprintf(&b, `<tr><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>`,
			template.HTMLEscapeString(row.Symbol), row.GeneID,
			template.HTMLEscapeString(row.Organism), template.HTMLEscapeString(row.Position),
			template.HTMLEscapeString(strings.Join(row.GoIDs, ", ")),
			strings.Join(mims, ", "),
			template.HTMLEscapeString(strings.Join(row.Proteins, ", ")),
			strings.Join(links, " "))
	}
	fmt.Fprintf(&b, `</table><p>%d genes; %d conflicts reconciled.</p><pre>%s</pre>
<p><a href="/">back to the query interface</a></p></div>`,
		len(view.Rows), view.Conflicts, template.HTMLEscapeString(stats.String()))
	s.render(w, template.HTML(b.String()))
}

func shortURL(u string) string {
	u = strings.TrimPrefix(u, "http://")
	if len(u) > 40 {
		u = u[:37] + "..."
	}
	return u
}

// object renders the Figure 5(c) individual object view.
func (s *server) object(w http.ResponseWriter, r *http.Request) {
	url := r.FormValue("url")
	out, err := s.sys.ObjectView(url)
	if err != nil {
		// Escape before reflecting: the URL is attacker-controlled input.
		w.WriteHeader(http.StatusNotFound)
		s.render(w, template.HTML(fmt.Sprintf(
			`<div class="box"><p>no object behind <code>%s</code></p></div>`,
			template.HTMLEscapeString(url))))
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<div class="box"><h2>Individual object view (Figure 5c)</h2>
<p><code>%s</code></p><pre>`, template.HTMLEscapeString(url))
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "link ") {
			u := strings.TrimSpace(strings.TrimPrefix(trimmed, "link"))
			fmt.Fprintf(&b, `  link           <a href="/object?url=%s">%s</a>`+"\n",
				template.URLQueryEscaper(u), template.HTMLEscapeString(u))
			continue
		}
		b.WriteString(template.HTMLEscapeString(line) + "\n")
	}
	b.WriteString(`</pre><p><a href="/">back to the query interface</a></p></div>`)
	s.render(w, template.HTML(b.String()))
}
