package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/mediator"
	"repro/internal/snapstore"
	"repro/internal/sources/locuslink"
	"repro/internal/warehouse"
)

var (
	testSysOnce sync.Once
	testSysVal  *core.System
)

// testSystem builds one small System shared by every handler test (building
// it per-test would dominate the suite's runtime).
func testSystem(t *testing.T) *core.System {
	t.Helper()
	testSysOnce.Do(func() {
		cfg := datagen.Config{
			Seed: 777, Genes: 60, GoTerms: 40, Diseases: 30,
			ConflictRate: 0.2, MissingRate: 0.1,
		}
		sys, err := core.New(datagen.Generate(cfg), mediator.Options{})
		if err != nil {
			panic(err)
		}
		if err := sys.PlugInProteins(); err != nil {
			panic(err)
		}
		testSysVal = sys
	})
	return testSysVal
}

func get(t *testing.T, h http.Handler, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec
}

func postJSON(t *testing.T, h http.Handler, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	return rec
}

func TestFormPage(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	rec := get(t, h, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET / = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"Query interface (Figure 5a)", `name="t_GO"`, `name="t_OMIM"`, "Run biological question"} {
		if !strings.Contains(body, want) {
			t.Errorf("form page missing %q", want)
		}
	}
}

func TestUnknownPathIs404(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	if rec := get(t, h, "/no/such/page"); rec.Code != http.StatusNotFound {
		t.Fatalf("GET /no/such/page = %d, want 404", rec.Code)
	}
}

func TestAskHTML(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	rec := get(t, h, "/ask?t_GO=include&t_OMIM=exclude")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /ask = %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	if !strings.Contains(body, "Annotation integrated view (Figure 5b)") {
		t.Error("missing view heading")
	}
	if !strings.Contains(body, "exists G.Annotation") || !strings.Contains(body, "not exists G.Disease") {
		t.Error("compiled Lorel not echoed")
	}
	if !strings.Contains(body, "cache:") {
		t.Error("stats block missing cache counters")
	}
}

func TestAskHTMLBadCondition(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	rec := get(t, h, "/ask?field=Organism&op=BOGUS&value=x")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad operator: got %d, want 400", rec.Code)
	}
}

// TestAskHTMLEscaping: user input reflected into the page must come back
// entity-escaped, never as live markup.
func TestAskHTMLEscaping(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	payload := `<script>alert(1)</script>`
	tests := []struct {
		name, target string
		wantCode     int
	}{
		{"ask condition value", "/ask?field=Organism&op==&value=" + url.QueryEscape(payload), http.StatusOK},
		{"object url", "/object?url=" + url.QueryEscape(payload), http.StatusNotFound},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rec := get(t, h, tt.target)
			if rec.Code != tt.wantCode {
				t.Fatalf("got %d, want %d", rec.Code, tt.wantCode)
			}
			if strings.Contains(rec.Body.String(), payload) {
				t.Errorf("raw script tag reflected into response")
			}
		})
	}
}

func TestObjectHTML(t *testing.T) {
	sys := testSystem(t)
	h := newMux(sys, nil, 0)
	u := locuslink.SelfURL(sys.Corpus.Genes[0].LocusID)
	rec := get(t, h, "/object?url="+url.QueryEscape(u))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /object = %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "Individual object view (Figure 5c)") {
		t.Error("missing object view heading")
	}
	if rec := get(t, h, "/object?url=http://nowhere.example/x"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown object = %d, want 404", rec.Code)
	}
}

func TestAPIAskPost(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	rec := postJSON(t, h, "/api/ask", `{"include":["GO"],"exclude":["OMIM"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /api/ask = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var resp askResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) == 0 {
		t.Fatal("no rows in JSON view")
	}
	if !strings.Contains(resp.Question, "exists G.Annotation") {
		t.Errorf("question = %q", resp.Question)
	}
	if resp.Stats.Cache == nil {
		t.Error("cache stats absent from response")
	}
	// The identical question again must be a cache hit.
	rec2 := postJSON(t, h, "/api/ask", `{"include":["GO"],"exclude":["OMIM"]}`)
	var resp2 askResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Stats.Cache == nil || !resp2.Stats.Cache.Hit {
		t.Error("repeated question did not hit the result cache")
	}
	if len(resp2.Rows) != len(resp.Rows) {
		t.Errorf("cached answer has %d rows, first had %d", len(resp2.Rows), len(resp.Rows))
	}
}

func TestAPIAskGetFormParams(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	rec := get(t, h, "/api/ask?t_GO=include&t_OMIM=exclude")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/ask = %d: %s", rec.Code, rec.Body.String())
	}
	var resp askResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestAPIAsk4xx(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	tests := []struct {
		name string
		do   func() *httptest.ResponseRecorder
		want int
	}{
		{"malformed json", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/api/ask", `{"include":`)
		}, http.StatusBadRequest},
		{"unknown field", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/api/ask", `{"bogus":1}`)
		}, http.StatusBadRequest},
		{"bad combine", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/api/ask", `{"combine":"sometimes"}`)
		}, http.StatusBadRequest},
		{"unknown source", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/api/ask", `{"include":["NoSuchDB"]}`)
		}, http.StatusBadRequest},
		{"bad operator", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/api/ask", `{"conditions":[{"field":"Organism","op":"~","value":"x"}]}`)
		}, http.StatusBadRequest},
		{"method not allowed", func() *httptest.ResponseRecorder {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/api/ask", nil))
			return rec
		}, http.StatusMethodNotAllowed},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rec := tt.do()
			if rec.Code != tt.want {
				t.Fatalf("got %d, want %d: %s", rec.Code, tt.want, rec.Body.String())
			}
			var e map[string]string
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
				t.Errorf("error body not JSON with error field: %s", rec.Body.String())
			}
		})
	}
}

func TestAPIQuery(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	q := `select G from ANNODA-GML.Gene G where exists G.Annotation`
	rec := get(t, h, "/api/query?q="+url.QueryEscape(q))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/query = %d: %s", rec.Code, rec.Body.String())
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Answers == 0 || resp.Text == "" {
		t.Fatalf("empty answer: %+v", resp)
	}
	// POST body form.
	rec2 := postJSON(t, h, "/api/query", fmt.Sprintf(`{"query":%q}`, q))
	if rec2.Code != http.StatusOK {
		t.Fatalf("POST /api/query = %d", rec2.Code)
	}
	var resp2 queryResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Answers != resp.Answers {
		t.Errorf("GET and POST disagree: %d vs %d", resp.Answers, resp2.Answers)
	}
	// 4xx paths.
	if rec := get(t, h, "/api/query"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing q = %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/api/query?q=not+lorel"); rec.Code != http.StatusBadRequest {
		t.Errorf("garbage query = %d, want 400", rec.Code)
	}
}

func TestAPIExplain(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	q := `select G from ANNODA-GML.Gene G where exists G.Annotation`

	// Plan-only: structured report plus rendered text, no analyze block.
	rec := postJSON(t, h, "/api/explain", fmt.Sprintf(`{"query":%q}`, q))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /api/explain = %d: %s", rec.Code, rec.Body.String())
	}
	var resp explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	e := resp.Explain
	if e == nil || e.PlanTree == "" || len(e.Sources) == 0 {
		t.Fatalf("thin explain response: %s", rec.Body.String())
	}
	if e.Analyze != nil {
		t.Error("plan-only explain carried an analyze block")
	}
	if e.PathReason == "" {
		t.Error("path decision missing its reason")
	}
	if !strings.Contains(resp.Text, "sources:") {
		t.Errorf("rendered text missing sources block:\n%s", resp.Text)
	}

	// Analyze: actual cardinalities and stage timings appear.
	rec = postJSON(t, h, "/api/explain", fmt.Sprintf(`{"query":%q,"analyze":true}`, q))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /api/explain analyze = %d: %s", rec.Code, rec.Body.String())
	}
	resp = explainResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	a := resp.Explain.Analyze
	if a == nil {
		t.Fatalf("analyze block absent: %s", rec.Body.String())
	}
	if a.Cardinalities.RootsMatched == 0 || len(a.Stages) != 3 || len(a.Fetched) == 0 {
		t.Errorf("dead analyze block: %+v", a)
	}

	// 4xx paths, each carrying the request ID for joinability.
	for name, body := range map[string]string{
		"empty body":    `{}`,
		"bad lorel":     `{"query":"not lorel"}`,
		"unknown field": `{"query":"x","nope":1}`,
	} {
		rec := postJSON(t, h, "/api/explain", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", name, rec.Code)
			continue
		}
		var errBody struct {
			Error     string `json:"error"`
			RequestID string `json:"request_id"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &errBody); err != nil {
			t.Fatal(err)
		}
		if errBody.Error == "" || errBody.RequestID == "" {
			t.Errorf("%s error body lacks error/request_id: %s", name, rec.Body.String())
		}
	}
	if rec := get(t, h, "/api/explain"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/explain = %d, want 405", rec.Code)
	}
}

// TestStatszIntrospection: the plan-cache counters, explain counter and
// per-source statistics table all surface in /statsz.
func TestStatszIntrospection(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	// Snapshot-eligible (touches every mapped concept), so the shared-epoch
	// build runs and feeds entity counts and label cardinalities.
	q := `select G from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease and exists G.Protein`
	get(t, h, "/api/query?q="+url.QueryEscape(q))
	postJSON(t, h, "/api/explain", fmt.Sprintf(`{"query":%q}`, q))
	rec := get(t, h, "/statsz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /statsz = %d", rec.Code)
	}
	var resp struct {
		PlanCache     *cacheJSON `json:"plan_cache"`
		ExplainsTotal int64      `json:"explains_total"`
		SourceStats   []struct {
			Source          string         `json:"source"`
			Entities        int            `json:"entities"`
			Labels          map[string]int `json:"labels"`
			FetchCount      int64          `json:"fetch_count"`
			FetchEWMAMicros int64          `json:"fetch_ewma_micros"`
		} `json:"source_stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.PlanCache == nil || resp.PlanCache.Entries == 0 {
		t.Errorf("plan cache counters missing or empty: %s", rec.Body.String())
	}
	if resp.ExplainsTotal < 1 {
		t.Errorf("explains_total = %d, want >= 1", resp.ExplainsTotal)
	}
	if len(resp.SourceStats) == 0 {
		t.Fatalf("source_stats absent: %s", rec.Body.String())
	}
	for _, s := range resp.SourceStats {
		if s.Entities == 0 || s.FetchCount == 0 {
			t.Errorf("source %s stats look dead: %+v", s.Source, s)
		}
	}
}

func TestAPIObject(t *testing.T) {
	sys := testSystem(t)
	h := newMux(sys, nil, 0)
	u := locuslink.SelfURL(sys.Corpus.Genes[0].LocusID)
	rec := get(t, h, "/api/object?url="+url.QueryEscape(u))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/object = %d: %s", rec.Code, rec.Body.String())
	}
	var resp objectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.URL != u || resp.Text == "" {
		t.Fatalf("bad object response: %+v", resp)
	}
	if rec := get(t, h, "/api/object?url=http://nowhere.example/x"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown url = %d, want 404", rec.Code)
	}
	if rec := get(t, h, "/api/object"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing url = %d, want 400", rec.Code)
	}
}

func TestHealthz(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d", rec.Code)
	}
	var resp struct {
		Status  string   `json:"status"`
		Sources []string `json:"sources"`
		Genes   int      `json:"genes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.Genes == 0 || len(resp.Sources) < 3 {
		t.Fatalf("unhealthy health: %+v", resp)
	}
}

// TestReadyz: a healthy system is "ready" with every source's breaker
// state in the body, under both lenient and strict modes.
func TestReadyz(t *testing.T) {
	for _, strict := range []bool{false, true} {
		h := newMuxCfg(testSystem(t), nil, muxConfig{readyStrict: strict})
		rec := get(t, h, "/readyz")
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /readyz (strict=%v) = %d", strict, rec.Code)
		}
		var resp struct {
			Status  string `json:"status"`
			Sources []struct {
				Source string `json:"source"`
				State  string `json:"state"`
			} `json:"sources"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Status != "ready" {
			t.Fatalf("healthy system not ready: %+v", resp)
		}
		if len(resp.Sources) < 3 {
			t.Fatalf("readyz lists %d sources, want every registered one", len(resp.Sources))
		}
		for _, src := range resp.Sources {
			if src.State != "healthy" {
				t.Errorf("source %s reported %q on a healthy system", src.Source, src.State)
			}
		}
	}
}

// TestStatszHealthBlock: /statsz carries the same per-source health view.
func TestStatszHealthBlock(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	rec := get(t, h, "/statsz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /statsz = %d", rec.Code)
	}
	var resp struct {
		Health *struct {
			Status  string            `json:"status"`
			Sources []json.RawMessage `json:"sources"`
		} `json:"health"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Health == nil || resp.Health.Status != "ready" || len(resp.Health.Sources) < 3 {
		t.Fatalf("statsz health block wrong: %+v", resp.Health)
	}
}

func TestStatszCountsRequestsAndCache(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	get(t, h, "/healthz")
	get(t, h, "/healthz")
	rec := get(t, h, "/statsz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /statsz = %d", rec.Code)
	}
	var resp struct {
		RequestsTotal  int64            `json:"requests_total"`
		RequestsByPath map[string]int64 `json:"requests_by_path"`
		Cache          *cacheJSON       `json:"cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.RequestsTotal < 3 || resp.RequestsByPath["/healthz"] < 2 {
		t.Fatalf("request counters wrong: %+v", resp)
	}
	if resp.Cache == nil {
		t.Fatal("cache counters absent with cache enabled")
	}
}

// TestStatszSnapshotCounters: a snapshot-eligible API query must show up as
// a snapshot hit in /statsz and flag snapshot_used in its own stats.
func TestStatszSnapshotCounters(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	// The query must touch every mapped concept (the test system has ProtDB
	// plugged in) so nothing is pruned and the snapshot path is eligible.
	rec := get(t, h, "/api/query?q="+url.QueryEscape(
		`select G from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease and exists G.Protein`))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/query = %d: %s", rec.Code, rec.Body)
	}
	var qresp struct {
		Stats statsJSON `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &qresp); err != nil {
		t.Fatal(err)
	}
	if !qresp.Stats.SnapshotUsed {
		t.Error("snapshot_used not set on an eligible query's stats")
	}
	rec = get(t, h, "/statsz")
	var resp struct {
		Snapshot *struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"snapshot"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Snapshot == nil || resp.Snapshot.Hits < 1 {
		t.Fatalf("snapshot counters missing from /statsz: %s", rec.Body)
	}
}

// TestStatszPathCounterBounded: a scan over arbitrary URLs must not grow
// the per-path map without bound — overflow paths aggregate as "(other)".
func TestStatszPathCounterBounded(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	for i := 0; i < maxTrackedPaths+50; i++ {
		get(t, h, fmt.Sprintf("/scan/%d", i))
	}
	rec := get(t, h, "/statsz")
	var resp struct {
		RequestsByPath map[string]int64 `json:"requests_by_path"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.RequestsByPath) > maxTrackedPaths+1 { // +1 for "(other)"
		t.Fatalf("path map grew to %d entries, cap is %d", len(resp.RequestsByPath), maxTrackedPaths)
	}
	if resp.RequestsByPath["(other)"] == 0 {
		t.Fatal("overflow paths were not aggregated under (other)")
	}
}

// TestRequestTimeout: a request that outlives the per-request budget gets a
// 503 from http.TimeoutHandler rather than hanging the client.
func TestRequestTimeout(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	})
	srv := &server{logf: func(string, ...any) {}}
	h := srv.recovering(http.TimeoutHandler(slow, 20*time.Millisecond, "request timed out"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/slow", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request = %d, want 503", rec.Code)
	}
}

// TestRecoveryMiddleware: a panicking handler becomes a 500.
func TestRecoveryMiddleware(t *testing.T) {
	srv := &server{logf: func(string, ...any) {}}
	h := srv.recovering(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
}

// TestConcurrentAPIRequests drives the full middleware stack from many
// goroutines — the server-side companion to the core -race test.
func TestConcurrentAPIRequests(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				var rec *httptest.ResponseRecorder
				switch i % 3 {
				case 0:
					rec = postJSON(t, h, "/api/ask", `{"include":["GO"]}`)
				case 1:
					rec = get(t, h, "/api/query?q="+url.QueryEscape(`select G from ANNODA-GML.Gene G`))
				case 2:
					rec = get(t, h, "/statsz")
				}
				if rec.Code != http.StatusOK {
					body, _ := io.ReadAll(rec.Result().Body)
					t.Errorf("goroutine %d iter %d: %d %s", g, i, rec.Code, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// freshSystem builds a private System (the refresh tests mutate manager
// state, so they must not share the memoized one).
func freshSystem(t *testing.T) *core.System {
	t.Helper()
	cfg := datagen.Config{
		Seed: 778, Genes: 50, GoTerms: 30, Diseases: 20,
		ConflictRate: 0.2, MissingRate: 0.1,
	}
	sys, err := core.New(datagen.Generate(cfg), mediator.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestAPIRefresh(t *testing.T) {
	sys := freshSystem(t)
	wh := warehouse.New(sys.Registry, sys.Global)
	h := newMux(sys, wh, 0)

	// Warm the snapshot so the refresh has something to patch.
	if rec := get(t, h, "/api/query?q="+url.QueryEscape(
		`select G from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease`)); rec.Code != http.StatusOK {
		t.Fatalf("warm query = %d: %s", rec.Code, rec.Body.String())
	}
	rec := postJSON(t, h, "/api/refresh", `{"source":"GO"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /api/refresh = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Source     string `json:"source"`
		OldVersion uint64 `json:"old_version"`
		NewVersion uint64 `json:"new_version"`
		Patched    bool   `json:"patched"`
		Delta      struct {
			Applied int64 `json:"applied"`
		} `json:"delta"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Source != "GO" || resp.NewVersion != resp.OldVersion+1 {
		t.Errorf("refresh response = %+v", resp)
	}
	if !resp.Patched {
		t.Error("unchanged-source refresh did not patch the live snapshot")
	}
	if resp.Delta.Applied != 1 {
		t.Errorf("delta.applied = %d, want 1", resp.Delta.Applied)
	}

	// Unknown sources 404; missing body 400; GET 405.
	if rec := postJSON(t, h, "/api/refresh", `{"source":"Nope"}`); rec.Code != http.StatusNotFound {
		t.Errorf("unknown source = %d, want 404", rec.Code)
	}
	if rec := postJSON(t, h, "/api/refresh", `{}`); rec.Code != http.StatusBadRequest {
		t.Errorf("missing source = %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/api/refresh"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/refresh = %d, want 405", rec.Code)
	}

	// The warehouse pseudo-source runs ETL and bumps its load counter.
	rec = postJSON(t, h, "/api/refresh", `{"source":"warehouse"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("warehouse refresh = %d: %s", rec.Code, rec.Body.String())
	}
	if wh.Loads() != 1 {
		t.Errorf("warehouse loads = %d, want 1", wh.Loads())
	}
}

func TestAPIMethodNotAllowed(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	cases := []struct{ method, target string }{
		{http.MethodDelete, "/api/ask"},
		{http.MethodPut, "/api/query"},
		{http.MethodPost, "/api/object"},
		{http.MethodPost, "/healthz"},
		{http.MethodPost, "/statsz"},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(c.method, c.target, nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", c.method, c.target, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); allow == "" {
			t.Errorf("%s %s: missing Allow header", c.method, c.target)
		}
	}
}

func TestAPIBodyLimit(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	big := `{"query":"` + strings.Repeat("x", maxBodyBytes+1024) + `"}`
	rec := postJSON(t, h, "/api/query", big)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oversized body = %d, want 400", rec.Code)
	}
}

func TestStatszDeltaAndWarehouse(t *testing.T) {
	sys := freshSystem(t)
	wh := warehouse.New(sys.Registry, sys.Global)
	h := newMux(sys, wh, 0)
	if err := wh.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := wh.Archive("t1"); err != nil {
		t.Fatal(err)
	}
	rec := get(t, h, "/statsz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /statsz = %d", rec.Code)
	}
	var resp struct {
		Delta *struct {
			Applied int64 `json:"applied"`
		} `json:"delta"`
		Warehouse *struct {
			Loads    int      `json:"loads"`
			Archives []string `json:"archives"`
		} `json:"warehouse"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Delta == nil {
		t.Error("statsz missing delta counters")
	}
	if resp.Warehouse == nil {
		t.Fatal("statsz missing warehouse block")
	}
	if resp.Warehouse.Loads != 1 || len(resp.Warehouse.Archives) != 1 || resp.Warehouse.Archives[0] != "t1" {
		t.Errorf("warehouse block = %+v", resp.Warehouse)
	}
}

func TestAPIBatch(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	// The test system includes ProtDB, so a snapshot-safe question must
	// touch the Protein concept too (a pruned source disqualifies the
	// snapshot); the trailing "not exists G.Protein.Bogus" conjunct is
	// vacuously true and only keeps Protein un-pruned.
	safeQ := "select G from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease and not exists G.Protein.Bogus"
	body := `{"queries": [
		"` + safeQ + `",
		"select totally bogus",
		"select G.Symbol from ANNODA-GML.Gene G, G.Annotation A where exists G.Annotation and not exists G.Disease and not exists G.Protein.Bogus"
	]}`
	rec := postJSON(t, h, "/api/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /api/batch = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Questions int `json:"questions"`
		Failed    int `json:"failed"`
		Answers   []struct {
			Query        string `json:"query"`
			Answers      int    `json:"answers"`
			Error        string `json:"error"`
			SnapshotUsed bool   `json:"snapshot_used"`
		} `json:"answers"`
		Stats struct {
			BatchQuestions int `json:"batch_questions"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Questions != 3 || len(resp.Answers) != 3 {
		t.Fatalf("questions = %d, answers = %d, want 3/3", resp.Questions, len(resp.Answers))
	}
	if resp.Failed != 1 || resp.Answers[1].Error == "" {
		t.Errorf("malformed query not isolated: failed=%d err=%q", resp.Failed, resp.Answers[1].Error)
	}
	if resp.Answers[0].Answers == 0 || resp.Answers[2].Answers == 0 {
		t.Error("well-formed batch questions returned no answers")
	}
	if !resp.Answers[0].SnapshotUsed || !resp.Answers[2].SnapshotUsed {
		t.Error("snapshot-safe batch questions missed the pinned-epoch path")
	}
	if resp.Stats.BatchQuestions != 3 {
		t.Errorf("stats.batch_questions = %d, want 3", resp.Stats.BatchQuestions)
	}

	// Validation and method gating.
	if rec := postJSON(t, h, "/api/batch", `{"queries": []}`); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch = %d, want 400", rec.Code)
	}
	var many []string
	for i := 0; i <= maxBatchQueries; i++ {
		many = append(many, fmt.Sprintf("select G from ANNODA-GML.Gene G -- %d", i))
	}
	over, _ := json.Marshal(map[string][]string{"queries": many})
	if rec := postJSON(t, h, "/api/batch", string(over)); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch = %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/api/batch"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/batch = %d, want 405", rec.Code)
	}
}

func TestStatszEpochCounters(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	// At least one snapshot query so an epoch exists.
	postJSON(t, h, "/api/batch",
		`{"queries": ["select G from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease and not exists G.Protein.Bogus"]}`)
	rec := get(t, h, "/statsz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/statsz = %d", rec.Code)
	}
	var resp struct {
		Epoch struct {
			Published int64 `json:"published"`
			Pins      int64 `json:"pins"`
		} `json:"epoch"`
		Delta struct {
			EpochsPublished int64 `json:"epochs_published"`
			EpochPins       int64 `json:"epoch_pins"`
		} `json:"delta"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch.Published == 0 || resp.Epoch.Pins == 0 {
		t.Errorf("epoch counters not surfaced: %+v", resp.Epoch)
	}
	if resp.Delta.EpochsPublished != resp.Epoch.Published || resp.Delta.EpochPins != resp.Epoch.Pins {
		t.Errorf("delta epoch counters diverge from epoch block: %+v vs %+v", resp.Delta, resp.Epoch)
	}
}

// persistedSystem builds a fresh System with the durable snapshot store
// attached — the handler-level equivalent of starting with -data-dir.
func persistedSystem(t *testing.T, dir string) *core.System {
	t.Helper()
	sys := freshSystem(t)
	st, err := snapstore.Open(dir, snapstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := sys.Manager.EnablePersistence(st, mediator.PersistPolicy{}); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestAPICheckpointWithoutPersistence(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	rec := postJSON(t, h, "/api/admin/checkpoint", "")
	if rec.Code != http.StatusConflict {
		t.Fatalf("checkpoint without -data-dir = %d, want 409", rec.Code)
	}
}

func TestAPICheckpointAndWarmRestart(t *testing.T) {
	dir := t.TempDir()
	sys := persistedSystem(t, dir)
	h := newMux(sys, nil, 0)

	// An answer computed cold, and a checkpoint of the world behind it.
	cold := get(t, h, "/api/query?q="+url.QueryEscape(
		`select G.Symbol from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease`))
	if cold.Code != http.StatusOK {
		t.Fatalf("cold query = %d: %s", cold.Code, cold.Body)
	}
	rec := postJSON(t, h, "/api/admin/checkpoint", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /api/admin/checkpoint = %d: %s", rec.Code, rec.Body)
	}
	var ck struct {
		Seq     uint64 `json:"seq"`
		Bytes   int    `json:"bytes"`
		Persist struct {
			Checkpoints int64 `json:"checkpoints"`
		} `json:"persist"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ck); err != nil {
		t.Fatal(err)
	}
	if ck.Seq != 1 || ck.Bytes == 0 || ck.Persist.Checkpoints != 1 {
		t.Fatalf("checkpoint response %+v", ck)
	}
	if rec := get(t, h, "/api/admin/checkpoint"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /api/admin/checkpoint = %d, want 405", rec.Code)
	}

	// "Restart": a fresh System over the same corpus shape restores from
	// the store and answers identically through the API.
	sys2 := persistedSystem(t, dir)
	rr, err := sys2.Manager.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Restored {
		t.Fatalf("boot restore fell back: %+v", rr)
	}
	h2 := newMux(sys2, nil, 0)
	warm := get(t, h2, "/api/query?q="+url.QueryEscape(
		`select G.Symbol from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease`))
	if warm.Code != http.StatusOK {
		t.Fatalf("warm query = %d: %s", warm.Code, warm.Body)
	}
	var coldResp, warmResp struct {
		Answers int    `json:"answers"`
		Text    string `json:"text"`
		Stats   struct {
			SnapshotUsed bool `json:"snapshot_used"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(cold.Body.Bytes(), &coldResp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(warm.Body.Bytes(), &warmResp); err != nil {
		t.Fatal(err)
	}
	if warmResp.Answers != coldResp.Answers || warmResp.Text != coldResp.Text {
		t.Errorf("warm-restart answer diverges from cold answer (%d vs %d answers)",
			warmResp.Answers, coldResp.Answers)
	}
	if !warmResp.Stats.SnapshotUsed {
		t.Error("warm query did not take the snapshot path")
	}

	// The persistence counters surface in /statsz.
	st := get(t, h2, "/statsz")
	var statsResp struct {
		Persist *struct {
			Restores    int64 `json:"restores"`
			WALReplayed int64 `json:"wal_replayed"`
		} `json:"persist"`
	}
	if err := json.Unmarshal(st.Body.Bytes(), &statsResp); err != nil {
		t.Fatal(err)
	}
	if statsResp.Persist == nil || statsResp.Persist.Restores != 1 {
		t.Errorf("statsz persist block = %+v, want 1 restore", statsResp.Persist)
	}
}

func TestStatszPersistNullWithoutStore(t *testing.T) {
	h := newMux(testSystem(t), nil, 0)
	rec := get(t, h, "/statsz")
	var resp map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	raw, ok := resp["persist"]
	if !ok {
		t.Fatal("statsz has no persist key")
	}
	if string(raw) != "null" {
		t.Errorf("persist = %s without a store, want null", raw)
	}
}
