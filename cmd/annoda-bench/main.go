// Command annoda-bench regenerates every table and figure of the ANNODA
// paper (and the quantitative experiments attached to them) from the live
// implementations in this repository. Run with no flags for everything, or
// -exp E5 for one experiment (E1..E20). See EXPERIMENTS.md for the index.
//
// -json FILE additionally writes the headline numbers of the experiments
// that ran as machine-readable JSON (the BENCH_N.json files committed at
// the repo root are produced this way).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/capability"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fedsql"
	"repro/internal/feed"
	"repro/internal/gml"
	"repro/internal/lorel"
	"repro/internal/match"
	"repro/internal/mediator"
	"repro/internal/navigate"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/snapstore"
	"repro/internal/sources/locuslink"
	"repro/internal/warehouse"
	"repro/internal/wrapper"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (E1..E20) or 'all'")
	genes := flag.Int("genes", 1000, "corpus size (genes)")
	seed := flag.Uint64("seed", 20050405, "corpus seed")
	jsonOut := flag.String("json", "", "write headline numbers as JSON to this file")
	flag.Parse()

	cfg := datagen.DefaultConfig()
	cfg.Genes = *genes
	cfg.Seed = *seed
	c := datagen.Generate(cfg)
	sys, err := core.New(c, mediator.Options{})
	if err != nil {
		fatal(err)
	}

	runners := map[string]func(*datagen.Corpus, *core.System){
		"E1": e1, "E2": e2, "E3": e3, "E4": e4, "E5": e5, "E6": e6,
		"E7": e7, "E8": e8, "E9": e9, "E10": e10, "E11": e11, "E12": e12,
		"E13": e13, "E14": e14, "E15": e15, "E16": e16, "E17": e17, "E18": e18,
		"E19": e19, "E20": e20,
	}
	if *exp == "all" {
		for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20"} {
			banner(id)
			runners[id](c, sys)
		}
		writeHeadlines(*jsonOut, *genes, *seed)
		return
	}
	run, ok := runners[strings.ToUpper(*exp)]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	banner(strings.ToUpper(*exp))
	run(c, sys)
	writeHeadlines(*jsonOut, *genes, *seed)
}

// headlines collects the machine-readable numbers each runner records; the
// -json flag dumps it at the end of the run. Keys are experiment ids,
// values flat metric maps (durations in microseconds, marked by suffix).
var headlines = struct {
	sync.Mutex
	m map[string]map[string]any
}{m: map[string]map[string]any{}}

func record(exp, metric string, value any) {
	if d, ok := value.(time.Duration); ok {
		value = d.Microseconds()
	}
	headlines.Lock()
	defer headlines.Unlock()
	if headlines.m[exp] == nil {
		headlines.m[exp] = map[string]any{}
	}
	headlines.m[exp][metric] = value
}

func writeHeadlines(path string, genes int, seed uint64) {
	if path == "" {
		return
	}
	headlines.Lock()
	defer headlines.Unlock()
	out := struct {
		Genes       int                       `json:"genes"`
		Seed        uint64                    `json:"seed"`
		Experiments map[string]map[string]any `json:"experiments"`
	}{Genes: genes, Seed: seed, Experiments: headlines.m}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nheadline numbers written to %s\n", path)
}

func banner(id string) {
	fmt.Printf("\n================ %s ================\n", id)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "annoda-bench:", err)
	os.Exit(1)
}

// E1 — Figures 2/3: the ANNODA-OML model of one LocusLink record.
func e1(c *datagen.Corpus, sys *core.System) {
	w := sys.Registry.Get("LocusLink")
	text, err := wrapper.FragmentText(w, 0)
	if err != nil {
		fatal(err)
	}
	fmt.Println("ANNODA-OML representation of the structure and contents of LocusLink (Figure 3):")
	fmt.Println(text)
	// Round trip proves the notation is a real serialization.
	if _, err := oem.DecodeText(strings.NewReader(text)); err != nil {
		fatal(err)
	}
	fmt.Println("round-trip decode: ok")
}

// E2 — Figure 4: the ANNODA-GML global model.
func e2(c *datagen.Corpus, sys *core.System) {
	t0 := obs.Now()
	g, err := sys.Global.Materialize(sys.Registry)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("materialized GML: %d objects in %v\n", g.Len(), obs.Since(t0).Round(time.Millisecond))
	fmt.Println("\nmapping module output (MDSM + transformation calls):")
	fmt.Print(sys.Global.Describe())
}

// E3 — §4.1: the paper's Lorel query and its answer object.
func e3(c *datagen.Corpus, sys *core.System) {
	g, err := sys.Global.Materialize(sys.Registry)
	if err != nil {
		fatal(err)
	}
	q := `select X from ANNODA-GML.Source X where X.Name = "LocusLink"`
	fmt.Println("query:", q)
	res, err := lorel.Eval(g, lorel.MustParse(q))
	if err != nil {
		fatal(err)
	}
	xs := res.Graph.Children(res.Answer, "X")
	fmt.Printf("answer object %s with %d X edge(s); children of X:\n", res.Answer, len(xs))
	for _, x := range xs {
		for _, label := range []string{"SourceID", "Name", "Content", "Structure"} {
			child := res.Graph.Child(x, label)
			fmt.Printf("    %-10s %s %s\n", label, child, res.Graph.KindOf(child))
		}
	}
}

// E4 — Figure 5(a): question-to-Lorel compilation.
func e4(c *datagen.Corpus, sys *core.System) {
	qs := []core.Question{
		core.Figure5bQuestion(),
		{Include: []string{"GO", "OMIM"}, Combine: core.CombineAll},
		{Include: []string{"GO"}, Conditions: []core.Condition{{Field: "Organism", Op: "=", Value: "Homo sapiens"}}},
	}
	for _, q := range qs {
		l, err := sys.ToLorel(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("question %+v\n  -> %s\n", q, l)
	}
}

// E5 — Figure 5(b): the integrated view for the paper's running example.
func e5(c *datagen.Corpus, sys *core.System) {
	t0 := obs.Now()
	v, stats, err := sys.Ask(core.Figure5bQuestion())
	if err != nil {
		fatal(err)
	}
	elapsed := obs.Since(t0)
	out := v.Format()
	lines := strings.Split(out, "\n")
	head := lines
	if len(lines) > 14 {
		head = append(lines[:12], fmt.Sprintf("  ... (%d more rows)", len(v.Rows)-10), lines[len(lines)-2])
	}
	fmt.Println(strings.Join(head, "\n"))
	fmt.Printf("ground truth: %d genes; view: %d rows; agree=%v\n",
		len(c.GenesWithGoButNotOMIM()), len(v.Rows), len(c.GenesWithGoButNotOMIM()) == len(v.Rows))
	fmt.Printf("latency %v\n%s", elapsed.Round(time.Millisecond), stats.String())
}

// E6 — Figure 5(c): individual object view + link chase.
func e6(c *datagen.Corpus, sys *core.System) {
	var gene *datagen.Gene
	for i := range c.Genes {
		if len(c.Genes[i].GoTerms) > 0 && len(c.Genes[i].Diseases) > 0 {
			gene = &c.Genes[i]
			break
		}
	}
	if gene == nil {
		fmt.Println("no doubly-linked gene in corpus")
		return
	}
	url := locuslink.SelfURL(gene.LocusID)
	out, err := sys.ObjectView(url)
	if err != nil {
		fatal(err)
	}
	fmt.Println("individual object view for", url)
	fmt.Println(out)
	s := navigate.NewSession(sys.Resolver)
	if _, err := s.Open(url); err != nil {
		fatal(err)
	}
	targets, err := s.FollowAll()
	if err != nil {
		fatal(err)
	}
	bySource := map[string]int{}
	for _, t := range targets {
		bySource[t.Source]++
	}
	fmt.Printf("followed %d web-links (%d round trips): %v\n", len(targets), s.Trips, bySource)
}

// E7 — Table 1: the capability comparison, probed live.
func e7(c *datagen.Corpus, sys *core.System) {
	// A fresh system: E7's extensibility probe plugs ProtDB in.
	probeSys, err := core.New(c, mediator.Options{})
	if err != nil {
		fatal(err)
	}
	gus := warehouse.New(probeSys.Registry, probeSys.Global)
	if err := gus.Refresh(); err != nil {
		fatal(err)
	}
	rows, err := capability.BuildTable(&capability.Fixture{
		ANNODA:  probeSys,
		Kleisli: &capability.WrappedMultidb{System: probeSys},
		DL:      fedsql.New(probeSys.Registry),
		GUS:     gus,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(capability.Format(rows))
}

// E8 — optimizer ablation: pushdown / pruning / parallelism toggles.
func e8(c *datagen.Corpus, sys *core.System) {
	query := `select G from ANNODA-GML.Gene G where G.Symbol like "A%" and exists G.Annotation and not exists G.Disease`
	configs := []struct {
		name string
		opts mediator.Options
	}{
		{"all optimizations", mediator.Options{}},
		{"no pushdown", mediator.Options{DisablePushdown: true}},
		{"no pruning", mediator.Options{DisablePruning: true}},
		{"sequential", mediator.Options{Sequential: true}},
		{"none", mediator.Options{DisablePushdown: true, DisablePruning: true, Sequential: true}},
	}
	fmt.Printf("query: %s\n\n", query)
	fmt.Printf("%-20s %-10s %-12s %-12s %-10s %s\n", "config", "answers", "fetched", "kept", "sources", "latency")
	for _, cf := range configs {
		m := mediator.New(sys.Registry, sys.Global, cf.opts)
		t0 := obs.Now()
		res, stats, err := m.QueryString(query)
		if err != nil {
			fatal(err)
		}
		el := obs.Since(t0)
		fetched, kept := 0, 0
		for _, n := range stats.Fetched {
			fetched += n
		}
		for _, n := range stats.Kept {
			kept += n
		}
		fmt.Printf("%-20s %-10d %-12d %-12d %-10d %v\n",
			cf.name, res.Size(), fetched, kept, len(stats.SourcesQueried), el.Round(time.Microsecond))
	}
}

// E9 — MDSM matching: Hungarian vs greedy vs stable, accuracy and runtime.
func e9(c *datagen.Corpus, sys *core.System) {
	schemas, err := sys.Registry.Schemas()
	if err != nil {
		fatal(err)
	}
	concepts := gml.DomainConcepts()
	truth := map[string]map[string]string{
		"LocusLink": {"LocusID": "GeneID", "Symbol": "Symbol", "Organism": "Organism",
			"Description": "Description", "Position": "Position", "Alias": "Alias",
			"Links": "Links", "WebLink": "WebLink"},
		"GO": {"GeneSymbol": "Symbol", "Organism": "Organism", "GoID": "GoID",
			"Evidence": "Evidence", "Term": "Term"},
		"OMIM": {"MimNumber": "MimNumber", "Title": "Title", "GeneSymbol": "Symbol",
			"Locus": "GeneID", "CytoPosition": "Position", "Inheritance": "Inheritance",
			"WebLink": "WebLink"},
	}
	conceptFor := map[string]string{"LocusLink": "Gene", "GO": "Annotation", "OMIM": "Disease"}
	fmt.Printf("%-10s %-10s %-7s %-7s %-7s %s\n", "source", "matcher", "prec", "recall", "F1", "time")
	for _, s := range schemas {
		var conceptSchema wrapper.Schema
		for _, co := range concepts {
			if co.Name == conceptFor[s.Source] {
				conceptSchema = co.Schema()
			}
		}
		for _, m := range []struct {
			name string
			fn   func(a, b wrapper.Schema, o match.Options) match.Result
		}{
			{"hungarian", match.Match},
			{"greedy", match.MatchGreedy},
			{"stable", match.MatchStable},
		} {
			t0 := obs.Now()
			var res match.Result
			for i := 0; i < 200; i++ {
				res = m.fn(s, conceptSchema, match.Options{})
			}
			el := obs.Since(t0) / 200
			p, r, f1 := match.Evaluate(res, truth[s.Source])
			fmt.Printf("%-10s %-10s %-7.3f %-7.3f %-7.3f %v\n", s.Source, m.name, p, r, f1, el)
		}
	}
}

// E10 — the four architectures answer the same question.
func e10(c *datagen.Corpus, sys *core.System) {
	fmt.Println("question: genes annotated in GO but not associated with an OMIM disease")
	want := len(c.GenesWithGoButNotOMIM())
	fmt.Printf("ground truth: %d genes\n\n", want)
	fmt.Printf("%-22s %-8s %-10s %-28s %s\n", "architecture", "answers", "latency", "freshness", "notes")

	// ANNODA (federated, mediated).
	t0 := obs.Now()
	v, _, err := sys.Ask(core.Figure5bQuestion())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-22s %-8d %-10v %-28s %s\n", "ANNODA (federated)", len(v.Rows),
		obs.Since(t0).Round(time.Millisecond), "always fresh", "one global query, reconciled")

	// GUS-style warehouse.
	gus := warehouse.New(sys.Registry, sys.Global)
	tLoad := obs.Now()
	if err := gus.Refresh(); err != nil {
		fatal(err)
	}
	loadTime := obs.Since(tLoad)
	t1 := obs.Now()
	syms, err := gus.Figure5b()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-22s %-8d %-10v %-28s %s\n", "GUS (warehouse)", len(syms),
		obs.Since(t1).Round(time.Millisecond),
		fmt.Sprintf("stale until refresh (%v)", loadTime.Round(time.Millisecond)),
		"fast local SQL after ETL")

	// DiscoveryLink-style federation.
	dl := fedsql.New(sys.Registry)
	t2 := obs.Now()
	dlSyms, err := dl.Figure5b()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-22s %-8d %-10v %-28s %s\n", "DiscoveryLink (SQL)", len(dlSyms),
		obs.Since(t2).Round(time.Millisecond), "fresh per query", "user writes SQL + client anti-join")

	// Hypertext navigation.
	h := &navigate.Hypertext{LL: sys.LocusLink, GO: sys.GO, OM: sys.OMIM}
	t3 := obs.Now()
	hSyms, trips := h.AnswerFigure5b()
	fmt.Printf("%-22s %-8d %-10v %-28s %s\n", "Hypertext (Entrez)", len(hSyms),
		obs.Since(t3).Round(time.Millisecond), "fresh per page",
		fmt.Sprintf("%d link round-trips, no reconciliation", trips))
}

// E11 — plugging a new source in at runtime.
func e11(c *datagen.Corpus, sys *core.System) {
	fresh, err := core.New(c, mediator.Options{})
	if err != nil {
		fatal(err)
	}
	t0 := obs.Now()
	if err := fresh.PlugInProteins(); err != nil {
		fatal(err)
	}
	plugTime := obs.Since(t0)
	m := fresh.Global.MappingFor("ProtDB")
	fmt.Printf("plugged ProtDB in %v; mapped to concept %s with %d rules:\n",
		plugTime.Round(time.Millisecond), m.Concept, len(m.Rules))
	for _, r := range m.Rules {
		fmt.Printf("  %-12s <- %-4s  %s (score %.3f)\n", r.Global, r.Local, r.Transform, r.Score)
	}
	v, _, err := fresh.Ask(core.Question{Include: []string{"ProtDB"}})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("genes with protein records: %d\n", len(v.Rows))
}

// E13 — result cache and concurrency ablation: the same questions served
// repeatedly, sequentially and concurrently, with and without the sharded
// result cache. The cached/uncached ratio is the headline speedup.
func e13(c *datagen.Corpus, sys *core.System) {
	questions := []core.Question{
		core.Figure5bQuestion(),
		{Include: []string{"OMIM"}},
		{Include: []string{"GO", "OMIM"}, Combine: core.CombineAny},
		{Include: []string{"GO"}, Conditions: []core.Condition{{Field: "Symbol", Op: "like", Value: "A%"}}},
	}
	const rounds = 25

	type config struct {
		name string
		opts mediator.Options
	}
	configs := []config{
		{"cached", mediator.Options{}},
		{"uncached", mediator.Options{DisableCache: true}},
	}

	fmt.Println("workload: each of", len(questions), "distinct questions asked", rounds, "times")
	fmt.Printf("\n-- sequential --\n%-10s %-12s %-14s %s\n", "config", "total", "per-question", "cache")
	seq := map[string]time.Duration{}
	for _, cf := range configs {
		s, err := core.New(c, cf.opts)
		if err != nil {
			fatal(err)
		}
		t0 := obs.Now()
		n := 0
		for r := 0; r < rounds; r++ {
			for _, q := range questions {
				if _, _, err := s.Ask(q); err != nil {
					fatal(err)
				}
				n++
			}
		}
		el := obs.Since(t0)
		seq[cf.name] = el
		cacheCol := "disabled"
		if counters, ok := s.Manager.CacheCounters(); ok {
			cacheCol = fmt.Sprintf("hits=%d misses=%d", counters.Hits, counters.Misses)
		}
		fmt.Printf("%-10s %-12v %-14v %s\n", cf.name, el.Round(time.Millisecond),
			(el / time.Duration(n)).Round(time.Microsecond), cacheCol)
	}
	if seq["cached"] > 0 {
		ratio := float64(seq["uncached"]) / float64(seq["cached"])
		fmt.Printf("sequential speedup (uncached/cached): %.1fx\n", ratio)
		record("E13", "sequential_speedup_x", ratio)
	}

	fmt.Printf("\n-- concurrent (%d goroutines) --\n%-10s %-12s %-14s %s\n",
		8, "config", "total", "per-question", "cache")
	conc := map[string]time.Duration{}
	for _, cf := range configs {
		s, err := core.New(c, cf.opts)
		if err != nil {
			fatal(err)
		}
		var wg sync.WaitGroup
		t0 := obs.Now()
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					if _, _, err := s.Ask(questions[(g+r)%len(questions)]); err != nil {
						fatal(err)
					}
				}
			}(g)
		}
		wg.Wait()
		el := obs.Since(t0)
		conc[cf.name] = el
		n := 8 * rounds
		cacheCol := "disabled"
		if counters, ok := s.Manager.CacheCounters(); ok {
			cacheCol = fmt.Sprintf("hits=%d misses=%d shared=%d", counters.Hits, counters.Misses, counters.Shared)
		}
		fmt.Printf("%-10s %-12v %-14v %s\n", cf.name, el.Round(time.Millisecond),
			(el / time.Duration(n)).Round(time.Microsecond), cacheCol)
	}
	if conc["cached"] > 0 {
		ratio := float64(conc["uncached"]) / float64(conc["cached"])
		fmt.Printf("concurrent speedup (uncached/cached): %.1fx\n", ratio)
		record("E13", "concurrent_speedup_x", ratio)
	}
}

// E14 — compiled query plans and the fused-snapshot eval-only fast path:
// repeated-shape evaluation with a reused plan vs per-call compilation, and
// distinct questions answered eval-only against one shared fused graph vs
// paying fetch+fuse per question.
func e14(c *datagen.Corpus, sys *core.System) {
	const query = `select G from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease`
	g, _, err := sys.Manager.FusedGraph()
	if err != nil {
		fatal(err)
	}
	const rounds = 25

	plan, err := lorel.Compile(lorel.MustParse(query))
	if err != nil {
		fatal(err)
	}
	t0 := obs.Now()
	for i := 0; i < rounds; i++ {
		if _, err := plan.Eval(g); err != nil {
			fatal(err)
		}
	}
	compiled := obs.Since(t0) / rounds

	q := lorel.MustParse(query)
	t1 := obs.Now()
	for i := 0; i < rounds; i++ {
		if _, err := lorel.Eval(g, q); err != nil {
			fatal(err)
		}
	}
	interpreted := obs.Since(t1) / rounds

	fmt.Println("repeated-shape eval over the fused graph (plan reuse vs per-call compile):")
	fmt.Printf("  %-22s %v/eval\n", "compiled (plan reuse)", compiled.Round(time.Microsecond))
	fmt.Printf("  %-22s %v/eval\n", "compile-then-run", interpreted.Round(time.Microsecond))

	// Distinct questions over an unchanged source set: the snapshot path
	// shares one fused graph; the ablation recomputes fetch+fuse per ask.
	variants := []string{
		query,
		query + " and exists G.Annotation.GoID",
		query + " and exists G.Annotation.Evidence",
		query + " and exists G.Links",
		query + " and exists G.Annotation.Term and exists G.Links.GO",
	}
	fmt.Printf("\ndistinct questions, unchanged sources (%d distinct):\n", len(variants))
	for _, cf := range []struct {
		name string
		opts mediator.Options
	}{
		{"snapshot (eval-only)", mediator.Options{}},
		{"full pipeline", mediator.Options{DisableCache: true}},
	} {
		s, err := core.New(c, cf.opts)
		if err != nil {
			fatal(err)
		}
		t := obs.Now()
		for _, v := range variants {
			if _, _, err := s.Query(v); err != nil {
				fatal(err)
			}
		}
		el := obs.Since(t)
		line := fmt.Sprintf("  %-22s %v total, %v/question", cf.name,
			el.Round(time.Millisecond), (el / time.Duration(len(variants))).Round(time.Microsecond))
		if sc, ok := s.Manager.SnapshotCounters(); ok {
			line += fmt.Sprintf("  (snapshot hits=%d misses=%d)", sc.Hits, sc.Misses)
		}
		fmt.Println(line)
	}
}

// E15 — incremental change feeds: 1% of LocusLink changes, then a query.
// The delta path absorbs the refresh through Manager.RefreshSource (diff
// against the snapshot's recorded hashes, in-place patch, concept-scoped
// invalidation); the baseline takes the pre-delta route (wrapper Refresh,
// cache nuke, full fetch+fuse rebuild). Both systems receive the same
// native-storage edits, and the baseline's full rebuilds are the ground
// truth the delta answers are checked against.
func e15(c *datagen.Corpus, sys *core.System) {
	const query = `select G.Symbol from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease`
	const rounds = 10
	pct := len(c.Genes) / 100
	if pct < 1 {
		pct = 1
	}
	mkSys := func() *core.System {
		s, err := core.New(c, mediator.Options{CacheSize: 4096})
		if err != nil {
			fatal(err)
		}
		return s
	}
	deltaSys, fullSys := mkSys(), mkSys()
	for _, s := range []*core.System{deltaSys, fullSys} {
		if _, _, err := s.Query(query); err != nil {
			fatal(err)
		}
	}
	loci := make([]int, 0, pct)
	for i := range c.Genes {
		if len(loci) == pct {
			break
		}
		loci = append(loci, c.Genes[i].LocusID)
	}

	var deltaTime, fullTime time.Duration
	agree := true
	for r := 0; r < rounds; r++ {
		rev := fmt.Sprintf("revision %d", r)
		for _, s := range []*core.System{deltaSys, fullSys} {
			for _, id := range loci {
				if err := s.LocusLink.Update(id, func(l *locuslink.Locus) { l.Description = rev }); err != nil {
					fatal(err)
				}
			}
		}
		t0 := obs.Now()
		rr, err := deltaSys.Manager.RefreshSource("LocusLink")
		if err != nil {
			fatal(err)
		}
		resD, _, err := deltaSys.Query(query)
		if err != nil {
			fatal(err)
		}
		deltaTime += obs.Since(t0)
		if rr.FullRebuild || !rr.Patched {
			fatal(fmt.Errorf("delta path not taken: %+v", rr))
		}

		t1 := obs.Now()
		fullSys.Registry.Get("LocusLink").Refresh()
		resF, _, err := fullSys.Query(query)
		if err != nil {
			fatal(err)
		}
		fullTime += obs.Since(t1)

		got := oem.CanonicalText(resD.Graph, "answer", resD.Answer)
		want := oem.CanonicalText(resF.Graph, "answer", resF.Answer)
		if got != want {
			agree = false
		}
	}
	fmt.Printf("workload: %d rounds of (edit %d of %d LocusLink records, refresh, query)\n\n",
		rounds, pct, len(c.Genes))
	fmt.Printf("%-28s %-14s %s\n", "path", "per-round", "total")
	fmt.Printf("%-28s %-14v %v\n", "delta (RefreshSource)",
		(deltaTime / rounds).Round(time.Microsecond), deltaTime.Round(time.Millisecond))
	fmt.Printf("%-28s %-14v %v\n", "full fetch+fuse (Refresh)",
		(fullTime / rounds).Round(time.Microsecond), fullTime.Round(time.Millisecond))
	if deltaTime > 0 {
		fmt.Printf("speedup (full/delta): %.1fx\n", float64(fullTime)/float64(deltaTime))
		record("E15", "refresh_speedup_x", float64(fullTime)/float64(deltaTime))
		record("E15", "delta_per_round_us", deltaTime/rounds)
		record("E15", "full_per_round_us", fullTime/rounds)
	}
	fmt.Printf("answers agree with full-rebuild ground truth: %v\n", agree)
	dc := deltaSys.Manager.DeltaCounters()
	fmt.Printf("delta counters: applied=%d entities=%d full-rebuilds=%d selective-invalidations=%d\n",
		dc.DeltasApplied, dc.EntitiesPatched, dc.FullRebuilds, dc.SelectiveInvalidations)
}

// E12 — large-scale batch annotation.
func e12(c *datagen.Corpus, sys *core.System) {
	var symbols []string
	for i := range c.Genes {
		symbols = append(symbols, c.Genes[i].Symbol)
	}
	// Repeat to reach a 10k-symbol batch regardless of corpus size.
	for len(symbols) < 10000 {
		symbols = append(symbols, symbols...)
	}
	symbols = symbols[:10000]
	for _, workers := range []int{1, 4, 8} {
		t0 := obs.Now()
		results, err := sys.AnnotateBatch(symbols, workers)
		if err != nil {
			fatal(err)
		}
		el := obs.Since(t0)
		okCount := 0
		for _, r := range results {
			if r.Err == nil {
				okCount++
			}
		}
		fmt.Printf("batch of %d symbols, %d workers: %v (%.0f genes/s), %d annotated\n",
			len(symbols), workers, el.Round(time.Millisecond),
			float64(len(symbols))/el.Seconds(), okCount)
	}
	sort.Strings(symbols) // keep deterministic footprint for repeated runs
}

// E16 — lock-free snapshot epochs, parallel sharded fusion, batch eval.
// Three measurements: (1) concurrent distinct snapshot questions with and
// without continuous refresh churn — under the retired RWMutex design
// every patch stalled every reader, with epochs readers never block;
// (2) a 64-question batch through AskBatch (one pinned epoch, concurrent
// eval) vs the same questions asked one at a time; (3) a cold recorded
// fusion, sequential vs gene-key-sharded parallel.
func e16(c *datagen.Corpus, sys *core.System) {
	const goroutines = 8
	const perG = 40
	distinct := func(i int) string {
		opts := [...]string{
			" and exists G.Annotation", " and exists G.Annotation.GoID",
			" and exists G.Annotation.Evidence", " and exists G.Links",
			" and exists G.Links.GO", " and not exists G.Disease.MimNumber",
		}
		q := `select G.Symbol from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease`
		for bit := 0; bit < len(opts); bit++ {
			if i&(1<<bit) != 0 {
				q += opts[bit]
			}
		}
		return q
	}
	mkSys := func() *core.System {
		s, err := core.New(c, mediator.Options{CacheSize: 16, Workers: goroutines})
		if err != nil {
			fatal(err)
		}
		return s
	}

	// (1) Concurrent distinct questions, churn-free then under refresh churn.
	concurrentRun := func(s *core.System, churn bool) time.Duration {
		if _, _, err := s.Query(distinct(0)); err != nil {
			fatal(err)
		}
		stop := make(chan struct{})
		var churnWG sync.WaitGroup
		refreshes := 0
		if churn {
			churnWG.Add(1)
			go func() {
				defer churnWG.Done()
				r := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					r++
					id := s.Corpus.Genes[r%len(s.Corpus.Genes)].LocusID
					rev := fmt.Sprintf("churn %d", r)
					if err := s.LocusLink.Update(id, func(l *locuslink.Locus) { l.Description = rev }); err != nil {
						fatal(err)
					}
					if _, err := s.Manager.RefreshSource("LocusLink"); err != nil {
						fatal(err)
					}
					refreshes++
				}
			}()
		}
		var wg sync.WaitGroup
		t0 := obs.Now()
		for gID := 0; gID < goroutines; gID++ {
			wg.Add(1)
			go func(gID int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					if _, _, err := s.Query(distinct((gID*perG + i) % 64)); err != nil {
						fatal(err)
					}
				}
			}(gID)
		}
		wg.Wait()
		el := obs.Since(t0)
		close(stop)
		churnWG.Wait()
		if churn {
			fmt.Printf("  (refreshes absorbed during the run: %d)\n", refreshes)
		}
		return el
	}
	total := goroutines * perG
	fmt.Printf("concurrent distinct questions, %d goroutines x %d questions:\n", goroutines, perG)
	quiet := concurrentRun(mkSys(), false)
	fmt.Printf("  %-26s %v total, %v/question (%.0f q/s)\n", "epochs, quiescent sources",
		quiet.Round(time.Millisecond), (quiet / time.Duration(total)).Round(time.Microsecond),
		float64(total)/quiet.Seconds())
	churned := concurrentRun(mkSys(), true)
	fmt.Printf("  %-26s %v total, %v/question (%.0f q/s)\n", "epochs, refresh churn",
		churned.Round(time.Millisecond), (churned / time.Duration(total)).Round(time.Microsecond),
		float64(total)/churned.Seconds())
	record("E16", "quiescent_qps", float64(total)/quiet.Seconds())
	record("E16", "churn_qps", float64(total)/churned.Seconds())

	// (2) Batch vs one-at-a-time.
	batchQ := make([]string, 64)
	for i := range batchQ {
		batchQ[i] = distinct(i % 64)
	}
	bs := mkSys()
	if _, _, err := bs.Query(batchQ[0]); err != nil {
		fatal(err)
	}
	t0 := obs.Now()
	answers, stats, err := bs.QueryBatch(batchQ)
	if err != nil {
		fatal(err)
	}
	batchTime := obs.Since(t0)
	for _, a := range answers {
		if a.Err != nil {
			fatal(a.Err)
		}
	}
	ss := mkSys()
	if _, _, err := ss.Query(batchQ[0]); err != nil {
		fatal(err)
	}
	t1 := obs.Now()
	for _, q := range batchQ {
		if _, _, err := ss.Query(q); err != nil {
			fatal(err)
		}
	}
	seqTime := obs.Since(t1)
	fmt.Printf("\n%d-question batch (one pinned epoch):\n", len(batchQ))
	fmt.Printf("  %-26s %v total, %v/question\n", "AskBatch (concurrent)",
		batchTime.Round(time.Millisecond), (batchTime / time.Duration(len(batchQ))).Round(time.Microsecond))
	fmt.Printf("  %-26s %v total, %v/question\n", "one Query at a time",
		seqTime.Round(time.Millisecond), (seqTime / time.Duration(len(batchQ))).Round(time.Microsecond))
	fmt.Printf("  aggregate stats: %s", indent(stats.String()))

	// (3) Cold recorded fusion, sequential vs sharded parallel.
	fuseOnce := func(sequential bool) time.Duration {
		m := mediator.New(sys.Registry, sys.Global, mediator.Options{SequentialFuse: sequential, Workers: goroutines})
		t := obs.Now()
		if _, _, err := m.FusedGraph(); err != nil {
			fatal(err)
		}
		return obs.Since(t)
	}
	fmt.Printf("\ncold recorded fusion at %d genes:\n", len(c.Genes))
	seqFuse := fuseOnce(true)
	parFuse := fuseOnce(false)
	fmt.Printf("  %-26s %v\n", "sequential", seqFuse.Round(time.Millisecond))
	fmt.Printf("  %-26s %v (%d shards)\n", "parallel (gene-key shards)", parFuse.Round(time.Millisecond), goroutines)
	if parFuse > 0 {
		fmt.Printf("  speedup (seq/par): %.2fx\n", float64(seqFuse)/float64(parFuse))
	}
	dc := bs.Manager.DeltaCounters()
	fmt.Printf("\nepoch counters (batch system): published=%d pins=%d\n", dc.EpochsPublished, dc.EpochPins)
}

func indent(s string) string {
	return strings.ReplaceAll(s, "\n", "\n    ")
}

// E17 — the durable snapshot store: warm restore vs cold fetch+fuse, plus
// the WAL's cost under refresh churn.
func e17(c *datagen.Corpus, sys *core.System) {
	const rounds = 3
	dir, err := os.MkdirTemp("", "annoda-snapstore-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	// Prime: fuse once, checkpoint into the store.
	st, err := snapstore.Open(dir, snapstore.Options{})
	if err != nil {
		fatal(err)
	}
	if err := sys.Manager.EnablePersistence(st, mediator.PersistPolicy{}); err != nil {
		fatal(err)
	}
	save, err := sys.Manager.SaveSnapshot()
	if err != nil {
		fatal(err)
	}
	if err := st.Close(); err != nil {
		fatal(err)
	}

	// Cold restarts: rebuilt wrapper models + full fetch+fuse.
	var coldTime time.Duration
	for r := 0; r < rounds; r++ {
		for _, w := range sys.Registry.All() {
			w.Refresh()
		}
		t0 := obs.Now()
		m := mediator.New(sys.Registry, sys.Global, mediator.Options{})
		if _, _, err := m.FusedGraph(); err != nil {
			fatal(err)
		}
		coldTime += obs.Since(t0)
	}

	// Warm restarts: decode the checkpoint, replay the (empty) WAL.
	var warmTime time.Duration
	var restored *mediator.RestoreResult
	var warmWorld string
	for r := 0; r < rounds; r++ {
		t0 := obs.Now()
		m := mediator.New(sys.Registry, sys.Global, mediator.Options{})
		st, err := snapstore.Open(dir, snapstore.Options{})
		if err != nil {
			fatal(err)
		}
		if err := m.EnablePersistence(st, mediator.PersistPolicy{}); err != nil {
			fatal(err)
		}
		rr, err := m.LoadSnapshot()
		if err != nil {
			fatal(err)
		}
		if !rr.Restored {
			fatal(fmt.Errorf("restore fell back: %+v", rr))
		}
		warmTime += obs.Since(t0)
		restored = rr
		if r == 0 {
			g, _, err := m.FusedGraph()
			if err != nil {
				fatal(err)
			}
			warmWorld = oem.CanonicalText(g, "ANNODA-GML", g.Root("ANNODA-GML"))
		}
		st.Close()
	}
	// Parity: the restored world is byte-identical to a cold fusion.
	plain := mediator.New(sys.Registry, sys.Global, mediator.Options{})
	g, _, err := plain.FusedGraph()
	if err != nil {
		fatal(err)
	}
	coldWorld := oem.CanonicalText(g, "ANNODA-GML", g.Root("ANNODA-GML"))

	fmt.Printf("corpus: %d genes; checkpoint seq %d, %d bytes (written in %v)\n\n",
		len(c.Genes), save.Seq, save.Bytes, save.Took.Round(time.Millisecond))
	fmt.Printf("%-34s %v\n", "cold restart (fetch+fuse):", (coldTime / rounds).Round(time.Microsecond))
	fmt.Printf("%-34s %v\n", "warm restart (restore-from-disk):", (warmTime / rounds).Round(time.Microsecond))
	if warmTime > 0 {
		fmt.Printf("speedup (cold/warm): %.1fx\n", float64(coldTime)/float64(warmTime))
		record("E17", "restore_speedup_x", float64(coldTime)/float64(warmTime))
		record("E17", "cold_restart_us", coldTime/rounds)
		record("E17", "warm_restart_us", warmTime/rounds)
	}
	fmt.Printf("restored: %d objects, %d genes, %d WAL records replayed\n",
		restored.Objects, restored.Genes, restored.WALReplayed)
	fmt.Printf("restored world byte-identical to cold fusion: %v\n", warmWorld == coldWorld)
}

// E18 — live change feeds. Three measurements: (1) hub publish fan-out to
// 100 and 1000 draining subscribers (publish-to-consumed, not enqueue);
// (2) a standing query kept current by inline re-evaluation on each
// answer-changing refresh, vs (3) the polling client it replaces, which
// re-runs the query and re-canonicalizes after every refresh. The per-round
// cost is comparable by construction when every change touches the query —
// the feed's wins are zero poll-interval latency, nothing re-evaluated when
// the changed concepts don't intersect the query, and sub-millisecond
// notification fan-out.
func e18(c *datagen.Corpus, sys *core.System) {
	// (1) Fan-out: one change event delivered to every subscriber.
	fanout := func(subs, events int) time.Duration {
		h := feed.NewHub()
		var consumed atomic.Int64
		var wg sync.WaitGroup
		all := make([]*feed.Subscriber, subs)
		for i := range all {
			s := h.Subscribe(feed.Options{Buffer: 256})
			all[i] = s
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					for {
						if _, ok := s.Next(); !ok {
							break
						}
						consumed.Add(1)
					}
					if s.Closed() {
						return
					}
					<-s.Notify()
				}
			}()
		}
		t0 := obs.Now()
		for i := 0; i < events; i++ {
			h.Publish(feed.Event{
				Kind: feed.KindChange, Source: "GO",
				Concepts: []string{"Annotation"}, Fingerprint: uint64(i + 1),
			}, nil)
			for consumed.Load() < int64(subs)*int64(i+1) {
				runtime.Gosched()
			}
		}
		el := obs.Since(t0)
		for _, s := range all {
			s.Close()
		}
		wg.Wait()
		return el
	}
	const events = 200
	fmt.Printf("notification fan-out, %d change events, publish-to-consumed:\n", events)
	for _, subs := range []int{100, 1000} {
		el := fanout(subs, events)
		per := el / time.Duration(events)
		fmt.Printf("  %5d subscribers: %v/event (%.0f deliveries/s)\n",
			subs, per.Round(time.Microsecond), float64(subs)*float64(events)/el.Seconds())
		record("E18", fmt.Sprintf("fanout_%d_per_event_us", subs), per)
	}

	// (2)/(3) Standing query vs poll, identical answer-changing edits.
	const query = `select G from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease`
	const rounds = 10
	answerLocus := func() int {
		diseased := map[int]bool{}
		for _, d := range c.Diseases {
			for _, l := range d.Loci {
				diseased[l] = true
			}
		}
		for i := range c.Genes {
			if len(c.Genes[i].GoTerms) > 0 && !diseased[c.Genes[i].LocusID] && !c.Genes[i].LLMissingDesc {
				return c.Genes[i].LocusID
			}
		}
		fatal(fmt.Errorf("corpus has no annotated, disease-free gene"))
		return -1
	}
	mkSys := func() *core.System {
		s, err := core.New(c, mediator.Options{})
		if err != nil {
			fatal(err)
		}
		if _, _, err := s.Query(query); err != nil {
			fatal(err)
		}
		return s
	}

	standSys := mkSys()
	sub, err := standSys.Manager.SubscribeChanges(feed.Options{Concepts: []string{"NoSuchConcept"}})
	if err != nil {
		fatal(err)
	}
	defer sub.Close()
	sq, err := standSys.Manager.AddStandingQuery(sub, query)
	if err != nil {
		fatal(err)
	}
	defer sq.Cancel()
	if _, ok := sub.Next(); !ok {
		fatal(fmt.Errorf("no baseline answer pushed"))
	}
	id := answerLocus()
	var standTime time.Duration
	pushes := 0
	for r := 0; r < rounds; r++ {
		rev := fmt.Sprintf("e18 standing %d", r)
		if err := standSys.LocusLink.Update(id, func(l *locuslink.Locus) { l.Description = rev }); err != nil {
			fatal(err)
		}
		t0 := obs.Now()
		if _, err := standSys.Manager.RefreshSource("LocusLink"); err != nil {
			fatal(err)
		}
		for {
			ev, ok := sub.Next()
			if !ok {
				break
			}
			if ev.Kind == feed.KindAnswer {
				pushes++
			}
		}
		standTime += obs.Since(t0)
	}

	pollSys := mkSys()
	var pollTime time.Duration
	for r := 0; r < rounds; r++ {
		rev := fmt.Sprintf("e18 poll %d", r)
		if err := pollSys.LocusLink.Update(id, func(l *locuslink.Locus) { l.Description = rev }); err != nil {
			fatal(err)
		}
		t0 := obs.Now()
		if _, err := pollSys.Manager.RefreshSource("LocusLink"); err != nil {
			fatal(err)
		}
		res, _, err := pollSys.Query(query)
		if err != nil {
			fatal(err)
		}
		if oem.CanonicalText(res.Graph, "answer", res.Answer) == "" {
			fatal(fmt.Errorf("empty canonical answer"))
		}
		pollTime += obs.Since(t0)
	}

	fmt.Printf("\nkeeping one watcher current over %d answer-changing refreshes:\n", rounds)
	fmt.Printf("  %-34s %v/round (%d answers pushed)\n", "standing query (inline re-eval):",
		(standTime / rounds).Round(time.Microsecond), pushes)
	fmt.Printf("  %-34s %v/round\n", "poll (refresh + re-query + diff):",
		(pollTime / rounds).Round(time.Microsecond))
	record("E18", "standing_per_round_us", standTime/rounds)
	record("E18", "poll_per_round_us", pollTime/rounds)
	record("E18", "standing_answers_pushed", pushes)
}

// E19 — observability overhead: the identical cached-Ask workload served
// by a plain mediator and by one carrying a live obs bundle (op+stage
// histograms, per-request traces at the default 1-in-1 sampling, and a
// 1-in-16 sampled variant). The headline is the traced/untraced overhead
// in percent; the acceptance bar for the PR that introduced internal/obs
// was <5% at default sampling on the E13/E16-shaped workloads.
func e19(c *datagen.Corpus, sys *core.System) {
	questions := []core.Question{
		core.Figure5bQuestion(),
		{Include: []string{"OMIM"}},
		{Include: []string{"GO", "OMIM"}, Combine: core.CombineAny},
		{Include: []string{"GO"}, Conditions: []core.Condition{{Field: "Symbol", Op: "like", Value: "A%"}}},
	}
	const rounds = 50

	type config struct {
		name string
		opts mediator.Options
	}
	configs := []config{
		{"untraced", mediator.Options{}},
		{"traced", mediator.Options{Obs: obs.New(obs.Config{})}},
		{"sampled16", mediator.Options{Obs: obs.New(obs.Config{SampleEvery: 16})}},
	}

	// Overheads under ~5% drown in scheduler and GC noise on a loaded
	// machine, so each config runs several trials and the minimum counts:
	// the min is the run least disturbed by everything that is not the
	// workload. Systems are built up front and trials interleave across
	// configs so a slow patch of machine time cannot bias one config.
	const trials = 5
	systems := map[string]*core.System{}
	for _, cf := range configs {
		s, err := core.New(c, cf.opts)
		if err != nil {
			fatal(err)
		}
		for _, q := range questions { // warm the cache out of the timed region
			if _, _, err := s.Ask(q); err != nil {
				fatal(err)
			}
		}
		systems[cf.name] = s
	}

	fmt.Println("workload: each of", len(questions), "distinct questions asked", rounds,
		"times (cached), best of", trials, "trials")
	fmt.Printf("\n-- sequential --\n%-10s %-12s %s\n", "config", "best", "per-question")
	seq := map[string]time.Duration{}
	for t := 0; t < trials; t++ {
		for _, cf := range configs {
			s := systems[cf.name]
			runtime.GC()
			t0 := obs.Now()
			for r := 0; r < rounds; r++ {
				for _, q := range questions {
					if _, _, err := s.Ask(q); err != nil {
						fatal(err)
					}
				}
			}
			el := obs.Since(t0)
			if cur, ok := seq[cf.name]; !ok || el < cur {
				seq[cf.name] = el
			}
		}
	}
	for _, cf := range configs {
		el := seq[cf.name]
		n := rounds * len(questions)
		fmt.Printf("%-10s %-12v %v\n", cf.name, el.Round(time.Millisecond),
			(el / time.Duration(n)).Round(time.Microsecond))
		record("E19", cf.name+"_per_ask_us", el/time.Duration(n))
	}
	if seq["untraced"] > 0 {
		over := (float64(seq["traced"])/float64(seq["untraced"]) - 1) * 100
		fmt.Printf("tracing overhead at default sampling: %+.1f%%\n", over)
		record("E19", "sequential_overhead_pct", over)
	}

	const workers = 8
	fmt.Printf("\n-- concurrent (%d goroutines) --\n%-10s %-12s %s\n", workers, "config", "best", "per-question")
	conc := map[string]time.Duration{}
	for t := 0; t < trials; t++ {
		for _, cf := range configs {
			s := systems[cf.name]
			runtime.GC()
			var wg sync.WaitGroup
			t0 := obs.Now()
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						if _, _, err := s.Ask(questions[(g+r)%len(questions)]); err != nil {
							fatal(err)
						}
					}
				}(g)
			}
			wg.Wait()
			el := obs.Since(t0)
			if cur, ok := conc[cf.name]; !ok || el < cur {
				conc[cf.name] = el
			}
		}
	}
	for _, cf := range configs {
		el := conc[cf.name]
		n := workers * rounds
		fmt.Printf("%-10s %-12v %v\n", cf.name, el.Round(time.Millisecond),
			(el / time.Duration(n)).Round(time.Microsecond))
		record("E19", cf.name+"_concurrent_per_ask_us", el/time.Duration(n))
	}
	if conc["untraced"] > 0 {
		over := (float64(conc["traced"])/float64(conc["untraced"]) - 1) * 100
		fmt.Printf("tracing overhead at default sampling: %+.1f%%\n", over)
		record("E19", "concurrent_overhead_pct", over)
	}
}

// E20 — introspection overhead: what the EXPLAIN/ANALYZE machinery costs.
// Three questions, each isolated: (1) the cached-Ask hot path with the
// instrumented evaluator in the binary but analyze off (every counting site
// takes the nil fast path — the acceptance bar for the introspection PR was
// <5% over the pre-instrumentation numbers); (2) the same plan evaluated
// with and without a live counts struct, isolating the per-stage counting
// cost; (3) the explain surface itself, plan-only and analyze.
func e20(c *datagen.Corpus, sys *core.System) {
	const query = `select G from ANNODA-GML.Gene G where exists G.Annotation and not exists G.Disease`
	s, err := core.New(c, mediator.Options{})
	if err != nil {
		fatal(err)
	}
	ask := core.Figure5bQuestion()
	if _, _, err := s.Ask(ask); err != nil { // warm cache + snapshot epoch
		fatal(err)
	}
	if _, _, err := s.Query(query); err != nil {
		fatal(err)
	}
	fused, _, err := s.Manager.FusedGraph()
	if err != nil {
		fatal(err)
	}
	q, err := lorel.Parse(query)
	if err != nil {
		fatal(err)
	}
	plan, err := lorel.Compile(q)
	if err != nil {
		fatal(err)
	}

	// Small overheads drown in machine noise, so every measurement runs
	// several interleaved trials and the minimum counts (see e19).
	const trials = 5
	best := map[string]time.Duration{}
	measure := func(name string, rounds int, f func()) {
		runtime.GC()
		t0 := obs.Now()
		for r := 0; r < rounds; r++ {
			f()
		}
		el := obs.Since(t0) / time.Duration(rounds)
		if cur, ok := best[name]; !ok || el < cur {
			best[name] = el
		}
	}
	for t := 0; t < trials; t++ {
		measure("ask_analyze_off", 200, func() {
			if _, _, err := s.Ask(ask); err != nil {
				fatal(err)
			}
		})
		measure("eval_plain", 3, func() {
			if _, err := plan.EvalCounted(fused, nil); err != nil {
				fatal(err)
			}
		})
		measure("eval_counted", 3, func() {
			if _, err := plan.EvalCounted(fused, &lorel.EvalCounts{}); err != nil {
				fatal(err)
			}
		})
		measure("explain_plan_only", 200, func() {
			if _, err := s.Manager.ExplainString(query, false); err != nil {
				fatal(err)
			}
		})
		measure("explain_analyze", 3, func() {
			if _, err := s.Manager.ExplainString(query, true); err != nil {
				fatal(err)
			}
		})
	}

	fmt.Printf("%-18s %s\n", "measurement", "best per-op")
	for _, name := range []string{"ask_analyze_off", "eval_plain", "eval_counted", "explain_plan_only", "explain_analyze"} {
		fmt.Printf("%-18s %v\n", name, best[name].Round(time.Microsecond))
		record("E20", name+"_per_us", best[name])
	}
	counting := (float64(best["eval_counted"])/float64(best["eval_plain"]) - 1) * 100
	fmt.Printf("per-stage counting overhead (counted vs plain eval): %+.1f%%\n", counting)
	record("E20", "counting_overhead_pct", counting)
	analyze := (float64(best["explain_analyze"])/float64(best["eval_plain"]) - 1) * 100
	fmt.Printf("analyze overhead over a bare eval (pin + counts + stats): %+.1f%%\n", analyze)
	record("E20", "analyze_overhead_pct", analyze)
}
