// Command annoda-lint runs the repository's invariant analyzers
// (lockedcall, frozenmut, criticalerr, nowalltime — see
// internal/analyzers) over Go packages.
//
// Standalone:
//
//	annoda-lint ./...          # analyze packages, test files included
//	annoda-lint -list          # print the suite
//	annoda-lint -prom FILE     # validate FILE as a Prometheus /metrics scrape
//	annoda-lint -explain-shape FILE  # validate FILE as a /api/explain response
//
// As a go vet tool (the unitchecker protocol, reimplemented on the
// standard library because the module is dependency-free):
//
//	go vet -vettool=$(which annoda-lint) ./...
//
// Findings print as file:line:col: analyzer: message; the exit status is
// non-zero when any finding survives suppression. A finding is suppressed
// by a directive comment on its line or the line above:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/analyzers"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annoda-lint: ")

	args := os.Args[1:]
	// go vet handshakes: tool version for the build cache key, and the
	// supported-flag list. Both print and exit.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// No tool-specific flags are passed through go vet.
			fmt.Println("[]")
			return
		}
	}
	// go vet invokes the tool with a single *.cfg argument per package.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		vetMain(args[0])
		return
	}

	fs := flag.NewFlagSet("annoda-lint", flag.ExitOnError)
	listOnly := fs.Bool("list", false, "list the analyzers and exit")
	promFile := fs.String("prom", "", "validate FILE as Prometheus text exposition (a /metrics scrape) and exit")
	explainFile := fs.String("explain-shape", "", "validate FILE as a /api/explain JSON response and exit")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: annoda-lint [-prom scrape.txt] [-explain-shape explain.json] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *listOnly {
		for _, a := range analyzers.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *promFile != "" {
		checkProm(*promFile)
		return
	}
	if *explainFile != "" {
		checkExplainShape(*explainFile)
		return
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	units, err := analyzers.Load(".", patterns)
	if err != nil {
		log.Fatal(err)
	}
	found := 0
	for _, u := range units {
		diags, err := u.Diagnostics(analyzers.All())
		if err != nil {
			log.Fatalf("%s: %v", u.PkgPath, err)
		}
		for _, d := range diags {
			fmt.Println(analyzers.FormatDiagnostic(u.Fset, d))
		}
		found += len(diags)
	}
	if found > 0 {
		log.Fatalf("%d finding(s)", found)
	}
}

// checkProm validates a saved /metrics scrape as Prometheus text
// exposition format 0.0.4 — the CI hook that keeps the hand-rolled
// exposition writer honest against a live server.
func checkProm(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	exp, err := obs.ValidateExposition(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	families := map[string]bool{}
	for _, s := range exp.Samples {
		families[s.Name] = true
	}
	fmt.Printf("%s: valid exposition, %d samples across %d series, %d TYPE families\n",
		path, len(exp.Samples), len(families), len(exp.Types))
}

// checkExplainShape validates a saved POST /api/explain response body — the
// CI hook that keeps the introspection wire shape honest against a live
// server. It decodes strictly (unknown top-level fields fail) and requires
// the fields an operator tool would navigate by.
func checkExplainShape(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var resp struct {
		Explain *struct {
			Query      string `json:"query"`
			PlanTree   string `json:"plan_tree"`
			PathReason string `json:"path_reason"`
			Sources    []struct {
				Source string `json:"source"`
				Reason string `json:"reason"`
			} `json:"sources"`
			Analyze *struct {
				Cardinalities struct {
					RootsMatched int `json:"roots_matched"`
					WhereEvals   int `json:"where_evals"`
				} `json:"cardinalities"`
				Fetched map[string]int `json:"fetched"`
				Stages  []struct {
					Stage  string `json:"stage"`
					Micros int64  `json:"micros"`
				} `json:"stages"`
			} `json:"analyze"`
		} `json:"explain"`
		Text string `json:"text"`
	}
	dec := json.NewDecoder(f)
	if err := dec.Decode(&resp); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	e := resp.Explain
	switch {
	case e == nil:
		log.Fatalf("%s: no explain object", path)
	case e.Query == "" || e.PlanTree == "" || e.PathReason == "":
		log.Fatalf("%s: explain lacks query/plan_tree/path_reason", path)
	case len(e.Sources) == 0:
		log.Fatalf("%s: explain lists no sources", path)
	case resp.Text == "":
		log.Fatalf("%s: rendered text form absent", path)
	}
	for _, s := range e.Sources {
		if s.Source == "" || s.Reason == "" {
			log.Fatalf("%s: source decision lacks source/reason: %+v", path, s)
		}
	}
	analyzed := "plan-only"
	if a := e.Analyze; a != nil {
		analyzed = "analyzed"
		if len(a.Stages) != 3 || len(a.Fetched) == 0 {
			log.Fatalf("%s: analyze block lacks stages/fetched", path)
		}
		if a.Cardinalities.RootsMatched == 0 {
			log.Fatalf("%s: analyze cardinalities are zero", path)
		}
	}
	fmt.Printf("%s: valid %s explain response, %d sources\n", path, analyzed, len(e.Sources))
}
