// Command annoda-lint runs the repository's invariant analyzers
// (lockedcall, frozenmut, criticalerr, nowalltime — see
// internal/analyzers) over Go packages.
//
// Standalone:
//
//	annoda-lint ./...          # analyze packages, test files included
//	annoda-lint -list          # print the suite
//	annoda-lint -prom FILE     # validate FILE as a Prometheus /metrics scrape
//
// As a go vet tool (the unitchecker protocol, reimplemented on the
// standard library because the module is dependency-free):
//
//	go vet -vettool=$(which annoda-lint) ./...
//
// Findings print as file:line:col: analyzer: message; the exit status is
// non-zero when any finding survives suppression. A finding is suppressed
// by a directive comment on its line or the line above:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/analyzers"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annoda-lint: ")

	args := os.Args[1:]
	// go vet handshakes: tool version for the build cache key, and the
	// supported-flag list. Both print and exit.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// No tool-specific flags are passed through go vet.
			fmt.Println("[]")
			return
		}
	}
	// go vet invokes the tool with a single *.cfg argument per package.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		vetMain(args[0])
		return
	}

	fs := flag.NewFlagSet("annoda-lint", flag.ExitOnError)
	listOnly := fs.Bool("list", false, "list the analyzers and exit")
	promFile := fs.String("prom", "", "validate FILE as Prometheus text exposition (a /metrics scrape) and exit")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: annoda-lint [-prom scrape.txt] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *listOnly {
		for _, a := range analyzers.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *promFile != "" {
		checkProm(*promFile)
		return
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	units, err := analyzers.Load(".", patterns)
	if err != nil {
		log.Fatal(err)
	}
	found := 0
	for _, u := range units {
		diags, err := u.Diagnostics(analyzers.All())
		if err != nil {
			log.Fatalf("%s: %v", u.PkgPath, err)
		}
		for _, d := range diags {
			fmt.Println(analyzers.FormatDiagnostic(u.Fset, d))
		}
		found += len(diags)
	}
	if found > 0 {
		log.Fatalf("%d finding(s)", found)
	}
}

// checkProm validates a saved /metrics scrape as Prometheus text
// exposition format 0.0.4 — the CI hook that keeps the hand-rolled
// exposition writer honest against a live server.
func checkProm(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	exp, err := obs.ValidateExposition(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	families := map[string]bool{}
	for _, s := range exp.Samples {
		families[s.Name] = true
	}
	fmt.Printf("%s: valid exposition, %d samples across %d series, %d TYPE families\n",
		path, len(exp.Samples), len(families), len(exp.Types))
}
