package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"

	"repro/internal/analyzers"
)

// This file implements the go vet tool protocol (what
// golang.org/x/tools/go/analysis/unitchecker provides) on the standard
// library: `go vet -vettool=annoda-lint` invokes the binary once per
// package with a JSON config naming the source files and the export data
// of every dependency, and expects diagnostics on stderr with a non-zero
// exit when there are findings, plus a facts file written to VetxOutput
// (this suite carries no cross-package facts, so the file is a stub).

// vetConfig mirrors the fields of the JSON config the go command writes
// for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion implements -V=full: the go command hashes this line into
// its build cache key for vet results.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel annoda-lint buildID=%x\n", exe, h.Sum(nil)[:24])
}

func vetMain(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parse vet config %s: %v", cfgPath, err)
	}

	// The go command requires the facts file even from tools without
	// facts: it is the unit's cache entry.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("annoda-lint: no facts\n"), 0o666); err != nil {
			log.Fatal(err)
		}
	}
	// VetxOnly marks a dependency package analyzed only for facts; with
	// no facts to compute there is nothing to do.
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	// Imports resolve through the compiler export data the go command
	// listed for us, after canonicalizing through ImportMap.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		log.Fatalf("typecheck %s: %v", cfg.ImportPath, err)
	}

	diags, err := analyzers.RunAnalyzers(fset, files, pkg, info, analyzers.All(), nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, analyzers.FormatDiagnostic(fset, d))
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
