package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the annoda-lint binary once per test run.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "annoda-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway module with the given files.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module vetcheck\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const cleanSrc = `package main

import (
	"log"
	"os"
)

func main() {
	if err := os.Remove("/tmp/x"); err != nil {
		log.Print(err)
	}
}
`

const dirtySrc = `package main

import "os"

func main() {
	os.Remove("/tmp/x")
}
`

// TestVettoolProtocol runs the binary the way go vet does and checks both
// directions: a clean module passes, a module with a dropped os.Remove
// error fails with the criticalerr diagnostic.
func TestVettoolProtocol(t *testing.T) {
	bin := buildLint(t)

	t.Run("clean", func(t *testing.T) {
		dir := writeModule(t, map[string]string{"main.go": cleanSrc})
		out, err := runVet(t, bin, dir)
		if err != nil {
			t.Fatalf("go vet failed on clean module: %v\n%s", err, out)
		}
	})

	t.Run("violation", func(t *testing.T) {
		dir := writeModule(t, map[string]string{"main.go": dirtySrc})
		out, err := runVet(t, bin, dir)
		if err == nil {
			t.Fatalf("go vet passed a dropped os.Remove error:\n%s", out)
		}
		if !strings.Contains(out, "criticalerr: dropped error return of os.Remove") {
			t.Fatalf("diagnostic missing from vet output:\n%s", out)
		}
	})
}

// TestStandaloneMode runs the binary directly (no vet driver) over a module.
func TestStandaloneMode(t *testing.T) {
	bin := buildLint(t)
	dir := writeModule(t, map[string]string{"main.go": dirtySrc})
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("standalone run passed a dropped os.Remove error:\n%s", out)
	}
	if !strings.Contains(string(out), "criticalerr: dropped error return of os.Remove") {
		t.Fatalf("diagnostic missing from standalone output:\n%s", out)
	}
}

func runVet(t *testing.T, bin, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}
