package annoda

import (
	"testing"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	c := GenerateCorpus(CorpusConfig{Seed: 42, Genes: 40, GoTerms: 30, Diseases: 20, ConflictRate: 0.2, MissingRate: 0.1})
	sys, err := NewSystem(c, Options{Policy: PolicyPreferPrimary})
	if err != nil {
		t.Fatal(err)
	}
	view, stats, err := sys.Ask(Figure5bQuestion())
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Rows) != len(c.GenesWithGoButNotOMIM()) {
		t.Errorf("view rows %d != ground truth %d", len(view.Rows), len(c.GenesWithGoButNotOMIM()))
	}
	if len(stats.SourcesQueried) == 0 {
		t.Error("no sources queried")
	}
	res, _, err := sys.Query(`select G from ANNODA-GML.Gene G where exists G.Annotation`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() == 0 {
		t.Error("direct Lorel query empty")
	}
}

func TestDefaultCorpusDeterministic(t *testing.T) {
	a, b := DefaultCorpus(), DefaultCorpus()
	if len(a.Genes) != len(b.Genes) || a.Genes[0].Symbol != b.Genes[0].Symbol {
		t.Error("DefaultCorpus not deterministic")
	}
	if len(a.Genes) != 1000 {
		t.Errorf("default corpus has %d genes", len(a.Genes))
	}
}
