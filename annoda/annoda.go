// Package annoda is the public API of this ANNODA reproduction: a federated
// integration system for molecular-biological annotation data (Prompramote
// & Chen, ICDE Workshops 2005).
//
// A System wraps three simulated annotation sources (LocusLink, GeneOntology,
// OMIM — generated deterministically by a corpus seed), builds the
// ANNODA-GML global model over them with MDSM/Hungarian schema matching,
// and mediates queries:
//
//	sys, err := annoda.NewSystem(annoda.DefaultCorpus(), annoda.Options{})
//	view, stats, err := sys.Ask(annoda.Question{
//	    Include: []string{"GO"},   // annotated with some GO function
//	    Exclude: []string{"OMIM"}, // not associated with a disease
//	})
//	fmt.Print(view.Format())
//
// Lorel queries in the global vocabulary are also accepted directly:
//
//	res, stats, err := sys.Query(
//	    `select G from ANNODA-GML.Gene G where exists G.Annotation`)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-artifact reproductions.
package annoda

import (
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/mediator"
	"repro/internal/snapstore"
)

// System is a running ANNODA instance. It embeds the internal system; all
// methods of core.System (Ask, Query, ObjectView, AnnotateBatch,
// PlugInProteins, ToLorel) are part of the public API.
type System = core.System

// Question is the Figure 5(a) biological-question form.
type Question = core.Question

// Condition narrows a question ({Field, Op, Value}).
type Condition = core.Condition

// View is the Figure 5(b) integrated annotation view.
type View = core.ViewRow

// Options tunes the mediator: reconciliation policy, optimizer toggles,
// and the sharded result cache (CacheSize, CacheTTL, DisableCache).
// Repeated questions are answered from the cache; concurrent identical
// questions collapse onto one computation.
type Options = mediator.Options

// Corpus is a deterministic synthetic annotation corpus.
type Corpus = datagen.Corpus

// CorpusConfig sizes a corpus.
type CorpusConfig = datagen.Config

// Reconciliation policies.
const (
	PolicyPreferPrimary = mediator.PolicyPreferPrimary
	PolicyMajority      = mediator.PolicyMajority
	PolicyUnion         = mediator.PolicyUnion
)

// Question combination modes.
const (
	CombineAll = core.CombineAll
	CombineAny = core.CombineAny
)

// DefaultCorpus generates the corpus used throughout the examples and
// experiments (seed 20050405: 1000 genes, 300 GO terms, 400 diseases, 15%
// conflicts, 10% missing fields).
func DefaultCorpus() *Corpus { return datagen.Generate(datagen.DefaultConfig()) }

// GenerateCorpus generates a corpus from an explicit configuration.
func GenerateCorpus(cfg CorpusConfig) *Corpus { return datagen.Generate(cfg) }

// NewSystem assembles a full ANNODA instance over a corpus: loads the three
// sources into their native storage, wraps them, MDSM-matches their schemas
// onto the global concepts, and starts the mediator and link navigator.
func NewSystem(c *Corpus, opts Options) (*System, error) { return core.New(c, opts) }

// Figure5bQuestion is the paper's running example: "Find a set of LocusLink
// genes, which are annotated with some GO functions, but not associated
// with some OMIM disease".
func Figure5bQuestion() Question { return core.Figure5bQuestion() }

// SnapshotStore is a durable checkpoint + delta-WAL store for the fused
// annotation world (see DESIGN.md "Persistence"). Attach one with
// sys.Manager.EnablePersistence, checkpoint with SaveSnapshot, and warm-
// start a fresh process with LoadSnapshot — restore decodes the newest
// valid checkpoint and replays its WAL instead of refetching and re-fusing
// every source.
type SnapshotStore = snapstore.Store

// SnapshotStoreOptions tunes a SnapshotStore (WAL fsync, retention).
type SnapshotStoreOptions = snapstore.Options

// PersistPolicy drives auto-checkpointing: the delta WAL is folded into a
// fresh checkpoint after EveryRecords records or EveryBytes bytes (zero
// values select the defaults).
type PersistPolicy = mediator.PersistPolicy

// OpenSnapshotStore creates (if needed) and opens a snapshot store
// directory.
func OpenSnapshotStore(dir string, opts SnapshotStoreOptions) (*SnapshotStore, error) {
	return snapstore.Open(dir, opts)
}
